"""TCAM-style vectorised membership over bit-packed pattern sets.

The BDD of :class:`repro.bdd.patterns.PatternSet` is the canonical set
representation (model counting, Hamming relaxation, DAG-size introspection),
but answering "is this batch of words in the set?" one BDD walk at a time is
a Python-loop-bound operation.  :class:`PackedMatcher` mirrors every
insertion into three flat NumPy structures and answers batched membership
through a pluggable *matcher kernel*, exactly like a ternary CAM in a
network switch:

* fully specified words — a deduplicated row matrix, matched by sort-based
  row lookup (or binary search in the compiled kernel);
* ternary words — ``(M, W)`` value/mask bit-planes; probe ``p`` matches row
  ``i`` iff ``(p ^ value_i) & mask_i == 0``;
* code-range words (robust interval monitors) — ``(M, P)`` per-position
  low/high code matrices; probe codes match iff they lie inside every range.

The mirror is exact: each structure covers precisely the words the
corresponding insertion API added, so matcher membership equals BDD
membership (a property the test suite pins down).

Kernel selection
----------------
The execution engine is chosen from :mod:`repro.runtime.kernels` — per
matcher via the ``backend`` constructor argument (a registry name or kernel
instance), or process-wide via ``REPRO_MATCHER_BACKEND``; the default is
the ``numpy`` reference.  All registered back-ends are pinned bit-for-bit
equivalent, so the choice only changes speed, never verdicts.  An *empty*
matcher never dispatches a kernel at all: membership is an allocated
all-False vector, so freshly constructed monitors pay no kernel resolution
or JIT warm-up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ShapeError
from .codec import TernaryPlanes, WordCodec
from .kernels import BackendChoice, MatcherKernel, MatchPlan, resolve_matcher_backend
from .packing import full_mask_words

__all__ = ["PackedMatcher"]


class PackedMatcher:
    """Vectorised membership mirror of a pattern set.

    Parameters
    ----------
    word_codec:
        Bit layout of the mirrored pattern words.
    backend:
        Matcher-kernel choice: a registry name (``"numpy"``, ``"compiled"``,
        ``"sharded"``, or anything registered via
        :func:`~repro.runtime.kernels.register_matcher_backend`), a ready
        :class:`~repro.runtime.kernels.MatcherKernel` instance, or ``None``
        to defer to the ``REPRO_MATCHER_BACKEND`` environment variable /
        the ``numpy`` default.  Resolution happens lazily at the first
        non-trivial query, so constructing matchers is registry-free and an
        invalid name fails with the valid choices listed.
    """

    def __init__(self, word_codec: WordCodec, backend: BackendChoice = None) -> None:
        self.word_codec = word_codec
        self._backend_choice: BackendChoice = backend
        self._kernel: Optional[MatcherKernel] = None
        self._exact_rows: set = set()
        self._ternary_values: List[np.ndarray] = []
        self._ternary_masks: List[np.ndarray] = []
        # Raw single-row inserts (lists of machine-word ints) are queued here
        # and consolidated lazily so per-sample insertion stays O(1) cheap.
        self._pending_values: List[Sequence[int]] = []
        self._pending_masks: List[Sequence[int]] = []
        self._range_low: List[np.ndarray] = []
        self._range_high: List[np.ndarray] = []
        self._exact_stacked: Optional[np.ndarray] = None
        self._ternary_stacked: Optional[TernaryPlanes] = None
        self._range_stacked: Optional[tuple] = None
        self._full_mask_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # kernel selection
    # ------------------------------------------------------------------
    def kernel(self) -> MatcherKernel:
        """The resolved matcher kernel (resolving the choice on first use)."""
        if self._kernel is None:
            self._kernel = resolve_matcher_backend(self._backend_choice)
        return self._kernel

    def set_backend(self, backend: BackendChoice) -> None:
        """Re-bind the matcher to another kernel back-end (state unchanged)."""
        self._backend_choice = backend
        self._kernel = None

    @property
    def backend_name(self) -> str:
        """Registry name of the active kernel (resolves the choice)."""
        return self.kernel().name

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def add_exact_packed(self, packed: np.ndarray) -> None:
        """Mirror a batch of fully specified packed words."""
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        if packed.ndim != 2 or packed.shape[1] != self.word_codec.num_words:
            raise ShapeError("packed rows do not match the codec word width")
        for row in packed:
            self._exact_rows.add(row.tobytes())
        self._exact_stacked = None

    def add_exact_bytes(self, row_bytes: bytes) -> None:
        """Mirror one fully specified word given as little-endian row bytes."""
        self._exact_rows.add(row_bytes)
        self._exact_stacked = None

    def add_ternary_raw(
        self, value_words: Sequence[int], mask_words: Sequence[int]
    ) -> None:
        """Mirror one ternary word given as raw machine-word integer lists."""
        self._pending_values.append(value_words)
        self._pending_masks.append(mask_words)
        self._ternary_stacked = None

    def add_ternary(self, planes: TernaryPlanes) -> None:
        """Mirror a batch of ternary words given as value/mask bit-planes."""
        values = np.ascontiguousarray(planes.values, dtype=np.uint64)
        masks = np.ascontiguousarray(planes.masks, dtype=np.uint64)
        if values.shape[1] != self.word_codec.num_words:
            raise ShapeError("ternary planes do not match the codec word width")
        # Fully constrained rows are plain words: route them to the hash set.
        full_mask = self._full_mask()
        fully = np.all(masks == full_mask[None, :], axis=1)
        if np.any(fully):
            self.add_exact_packed(values[fully])
        if np.any(~fully):
            self._ternary_values.extend(values[~fully])
            self._ternary_masks.extend(masks[~fully])
            self._ternary_stacked = None

    def add_code_ranges(self, low_codes: np.ndarray, high_codes: np.ndarray) -> None:
        """Mirror a batch of per-position code-range words."""
        low_codes = np.atleast_2d(np.asarray(low_codes, dtype=np.int64))
        high_codes = np.atleast_2d(np.asarray(high_codes, dtype=np.int64))
        if (
            low_codes.shape != high_codes.shape
            or low_codes.shape[1] != self.word_codec.num_positions
        ):
            raise ShapeError("code-range matrices do not match the codec layout")
        point = np.all(low_codes == high_codes, axis=1)
        if np.any(point):
            self.add_exact_packed(self.word_codec.pack_codes(low_codes[point]))
        if np.any(~point):
            self._range_low.extend(low_codes[~point])
            self._range_high.extend(high_codes[~point])
            self._range_stacked = None

    def export_state(self) -> Dict[str, np.ndarray]:
        """Flat-array image of every mirrored entry (for persistence).

        Returns little-endian ``uint64`` matrices for the exact rows and
        ternary value/mask planes, and ``int64`` matrices for the code
        ranges — exactly the structures :meth:`add_exact_packed` /
        :meth:`add_ternary` / :meth:`add_code_ranges` accept, so a matcher
        (and through it a whole pattern set) can be rebuilt without
        re-deriving anything.  Exact rows are sorted for a deterministic
        image, and every returned array is a copy: mutating the exported
        state can never corrupt the live matcher.
        """
        num_words = self.word_codec.num_words
        if self._exact_rows:
            exact = np.frombuffer(
                b"".join(sorted(self._exact_rows)), dtype="<u8"
            ).reshape(-1, num_words)
        else:
            exact = np.zeros((0, num_words), dtype="<u8")
        ternary = self._ternary_arrays()
        if ternary is not None:
            values = ternary.values.astype("<u8", copy=True)
            masks = ternary.masks.astype("<u8", copy=True)
        else:
            values = np.zeros((0, num_words), dtype="<u8")
            masks = np.zeros((0, num_words), dtype="<u8")
        ranges = self._range_arrays()
        if ranges is not None:
            range_low = np.array(ranges[0], dtype=np.int64)
            range_high = np.array(ranges[1], dtype=np.int64)
        else:
            range_low = np.zeros((0, self.word_codec.num_positions), dtype=np.int64)
            range_high = np.zeros((0, self.word_codec.num_positions), dtype=np.int64)
        return {
            "exact": exact,
            "ternary_values": values,
            "ternary_masks": masks,
            "range_low": range_low,
            "range_high": range_high,
        }

    def merge(self, other: "PackedMatcher") -> None:
        """Fold another matcher's entries into this one (set union)."""
        if other.word_codec.num_bits != self.word_codec.num_bits:
            raise ShapeError("cannot merge matchers with different word widths")
        self._exact_rows |= other._exact_rows
        self._ternary_values.extend(other._ternary_values)
        self._ternary_masks.extend(other._ternary_masks)
        self._pending_values.extend(other._pending_values)
        self._pending_masks.extend(other._pending_masks)
        self._range_low.extend(other._range_low)
        self._range_high.extend(other._range_high)
        self._exact_stacked = None
        self._ternary_stacked = None
        self._range_stacked = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _full_mask(self) -> np.ndarray:
        if self._full_mask_cache is None:
            self._full_mask_cache = full_mask_words(self.word_codec.num_bits)
        return self._full_mask_cache

    def _consolidate_pending(self) -> None:
        if not self._pending_values:
            return
        self._ternary_values.extend(
            np.array(self._pending_values, dtype=np.uint64)
        )
        self._ternary_masks.extend(np.array(self._pending_masks, dtype=np.uint64))
        self._pending_values = []
        self._pending_masks = []

    def _exact_arrays(self) -> Optional[np.ndarray]:
        """Deduplicated exact rows in row-lexicographic (word 0 first) order."""
        if not self._exact_rows:
            return None
        if self._exact_stacked is None:
            rows = np.frombuffer(
                b"".join(self._exact_rows), dtype=np.uint64
            ).reshape(-1, self.word_codec.num_words)
            # np.lexsort sorts by its *last* key first: feed the columns
            # reversed so word 0 is the primary key (what the compiled
            # kernel's binary search expects).
            order = np.lexsort(tuple(rows[:, w] for w in reversed(range(rows.shape[1]))))
            self._exact_stacked = np.ascontiguousarray(rows[order])
        return self._exact_stacked

    def _ternary_arrays(self) -> Optional[TernaryPlanes]:
        self._consolidate_pending()
        if not self._ternary_values:
            return None
        if self._ternary_stacked is None:
            self._ternary_stacked = TernaryPlanes(
                values=np.vstack(self._ternary_values),
                masks=np.vstack(self._ternary_masks),
            )
        return self._ternary_stacked

    def _range_arrays(self) -> Optional[tuple]:
        if not self._range_low:
            return None
        if self._range_stacked is None:
            self._range_stacked = (
                np.vstack(self._range_low),
                np.vstack(self._range_high),
            )
        return self._range_stacked

    @property
    def is_empty(self) -> bool:
        """True when no entry of any type has been mirrored yet."""
        return not (
            self._exact_rows
            or self._ternary_values
            or self._pending_values
            or self._range_low
        )

    def match_plan(self) -> MatchPlan:
        """Consolidated kernel-ready image of the matcher's current state."""
        ranges = self._range_arrays()
        return MatchPlan(
            word_codec=self.word_codec,
            exact=self._exact_arrays(),
            ternary=self._ternary_arrays(),
            range_low=ranges[0] if ranges is not None else None,
            range_high=ranges[1] if ranges is not None else None,
        )

    def contains_packed(
        self, packed: np.ndarray, codes: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched membership of fully specified packed probe words.

        ``codes`` may be passed alongside to avoid re-unpacking when
        code-range entries have to be checked.
        """
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        if packed.ndim != 2 or packed.shape[1] != self.word_codec.num_words:
            raise ShapeError("probe rows do not match the codec word width")
        if self.is_empty or packed.shape[0] == 0:
            # Allocated-shape early-out on every backend: no plan build, no
            # kernel resolution/dispatch, no JIT warm-up.
            return np.zeros(packed.shape[0], dtype=bool)
        return self.kernel().match(self.match_plan(), packed, codes=codes)

    def contains_codes(self, codes: np.ndarray) -> np.ndarray:
        """Batched membership of probes given as ``(N, P)`` code matrices."""
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        return self.contains_packed(self.word_codec.pack_codes(codes), codes=codes)

    # ------------------------------------------------------------------
    @property
    def num_exact(self) -> int:
        return len(self._exact_rows)

    @property
    def num_ternary(self) -> int:
        return len(self._ternary_values) + len(self._pending_values)

    @property
    def num_ranges(self) -> int:
        return len(self._range_low)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedMatcher(exact={self.num_exact}, ternary={self.num_ternary}, "
            f"ranges={self.num_ranges}, backend={self._backend_choice or 'default'})"
        )
