"""TCAM-style vectorised membership over bit-packed pattern sets.

The BDD of :class:`repro.bdd.patterns.PatternSet` is the canonical set
representation (model counting, Hamming relaxation, DAG-size introspection),
but answering "is this batch of words in the set?" one BDD walk at a time is
a Python-loop-bound operation.  :class:`PackedMatcher` mirrors every
insertion into three flat NumPy structures and answers batched membership
with a few broadcast kernels, exactly like a ternary CAM in a network switch:

* fully specified words — a hash set of packed rows (O(1) per probe);
* ternary words — ``(M, W)`` value/mask bit-planes; probe ``p`` matches row
  ``i`` iff ``(p ^ value_i) & mask_i == 0``;
* code-range words (robust interval monitors) — ``(M, P)`` per-position
  low/high code matrices; probe codes match iff they lie inside every range.

The mirror is exact: each structure covers precisely the words the
corresponding insertion API added, so matcher membership equals BDD
membership (a property the test suite pins down).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ShapeError
from .codec import TernaryPlanes, WordCodec
from .packing import pack_bool_matrix

__all__ = ["PackedMatcher"]

#: Soft cap on broadcast buffer elements; probe batches are chunked to this.
_CHUNK_ELEMENTS = 1 << 22


class PackedMatcher:
    """Vectorised membership mirror of a pattern set."""

    def __init__(self, word_codec: WordCodec) -> None:
        self.word_codec = word_codec
        self._exact_rows: set = set()
        self._ternary_values: List[np.ndarray] = []
        self._ternary_masks: List[np.ndarray] = []
        # Raw single-row inserts (lists of machine-word ints) are queued here
        # and consolidated lazily so per-sample insertion stays O(1) cheap.
        self._pending_values: List[Sequence[int]] = []
        self._pending_masks: List[Sequence[int]] = []
        self._range_low: List[np.ndarray] = []
        self._range_high: List[np.ndarray] = []
        self._ternary_stacked: Optional[TernaryPlanes] = None
        self._range_stacked: Optional[tuple] = None
        self._full_mask_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def add_exact_packed(self, packed: np.ndarray) -> None:
        """Mirror a batch of fully specified packed words."""
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        if packed.ndim != 2 or packed.shape[1] != self.word_codec.num_words:
            raise ShapeError("packed rows do not match the codec word width")
        for row in packed:
            self._exact_rows.add(row.tobytes())

    def add_exact_bytes(self, row_bytes: bytes) -> None:
        """Mirror one fully specified word given as little-endian row bytes."""
        self._exact_rows.add(row_bytes)

    def add_ternary_raw(
        self, value_words: Sequence[int], mask_words: Sequence[int]
    ) -> None:
        """Mirror one ternary word given as raw machine-word integer lists."""
        self._pending_values.append(value_words)
        self._pending_masks.append(mask_words)
        self._ternary_stacked = None

    def add_ternary(self, planes: TernaryPlanes) -> None:
        """Mirror a batch of ternary words given as value/mask bit-planes."""
        values = np.ascontiguousarray(planes.values, dtype=np.uint64)
        masks = np.ascontiguousarray(planes.masks, dtype=np.uint64)
        if values.shape[1] != self.word_codec.num_words:
            raise ShapeError("ternary planes do not match the codec word width")
        # Fully constrained rows are plain words: route them to the hash set.
        full_mask = self._full_mask()
        fully = np.all(masks == full_mask[None, :], axis=1)
        if np.any(fully):
            self.add_exact_packed(values[fully])
        if np.any(~fully):
            self._ternary_values.extend(values[~fully])
            self._ternary_masks.extend(masks[~fully])
            self._ternary_stacked = None

    def add_code_ranges(self, low_codes: np.ndarray, high_codes: np.ndarray) -> None:
        """Mirror a batch of per-position code-range words."""
        low_codes = np.atleast_2d(np.asarray(low_codes, dtype=np.int64))
        high_codes = np.atleast_2d(np.asarray(high_codes, dtype=np.int64))
        if (
            low_codes.shape != high_codes.shape
            or low_codes.shape[1] != self.word_codec.num_positions
        ):
            raise ShapeError("code-range matrices do not match the codec layout")
        point = np.all(low_codes == high_codes, axis=1)
        if np.any(point):
            self.add_exact_packed(self.word_codec.pack_codes(low_codes[point]))
        if np.any(~point):
            self._range_low.extend(low_codes[~point])
            self._range_high.extend(high_codes[~point])
            self._range_stacked = None

    def export_state(self) -> Dict[str, np.ndarray]:
        """Flat-array image of every mirrored entry (for persistence).

        Returns little-endian ``uint64`` matrices for the exact rows and
        ternary value/mask planes, and ``int64`` matrices for the code
        ranges — exactly the structures :meth:`add_exact_packed` /
        :meth:`add_ternary` / :meth:`add_code_ranges` accept, so a matcher
        (and through it a whole pattern set) can be rebuilt without
        re-deriving anything.  Exact rows are sorted for a deterministic
        image, and every returned array is a copy: mutating the exported
        state can never corrupt the live matcher.
        """
        num_words = self.word_codec.num_words
        if self._exact_rows:
            exact = np.frombuffer(
                b"".join(sorted(self._exact_rows)), dtype="<u8"
            ).reshape(-1, num_words)
        else:
            exact = np.zeros((0, num_words), dtype="<u8")
        ternary = self._ternary_arrays()
        if ternary is not None:
            values = ternary.values.astype("<u8", copy=True)
            masks = ternary.masks.astype("<u8", copy=True)
        else:
            values = np.zeros((0, num_words), dtype="<u8")
            masks = np.zeros((0, num_words), dtype="<u8")
        ranges = self._range_arrays()
        if ranges is not None:
            range_low = np.array(ranges[0], dtype=np.int64)
            range_high = np.array(ranges[1], dtype=np.int64)
        else:
            range_low = np.zeros((0, self.word_codec.num_positions), dtype=np.int64)
            range_high = np.zeros((0, self.word_codec.num_positions), dtype=np.int64)
        return {
            "exact": exact,
            "ternary_values": values,
            "ternary_masks": masks,
            "range_low": range_low,
            "range_high": range_high,
        }

    def merge(self, other: "PackedMatcher") -> None:
        """Fold another matcher's entries into this one (set union)."""
        if other.word_codec.num_bits != self.word_codec.num_bits:
            raise ShapeError("cannot merge matchers with different word widths")
        self._exact_rows |= other._exact_rows
        self._ternary_values.extend(other._ternary_values)
        self._ternary_masks.extend(other._ternary_masks)
        self._pending_values.extend(other._pending_values)
        self._pending_masks.extend(other._pending_masks)
        self._range_low.extend(other._range_low)
        self._range_high.extend(other._range_high)
        self._ternary_stacked = None
        self._range_stacked = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _full_mask(self) -> np.ndarray:
        if self._full_mask_cache is None:
            bits = np.ones((1, self.word_codec.num_bits), dtype=bool)
            self._full_mask_cache = pack_bool_matrix(bits)[0]
        return self._full_mask_cache

    def _consolidate_pending(self) -> None:
        if not self._pending_values:
            return
        self._ternary_values.extend(
            np.array(self._pending_values, dtype=np.uint64)
        )
        self._ternary_masks.extend(np.array(self._pending_masks, dtype=np.uint64))
        self._pending_values = []
        self._pending_masks = []

    def _ternary_arrays(self) -> Optional[TernaryPlanes]:
        self._consolidate_pending()
        if not self._ternary_values:
            return None
        if self._ternary_stacked is None:
            self._ternary_stacked = TernaryPlanes(
                values=np.vstack(self._ternary_values),
                masks=np.vstack(self._ternary_masks),
            )
        return self._ternary_stacked

    def _range_arrays(self) -> Optional[tuple]:
        if not self._range_low:
            return None
        if self._range_stacked is None:
            self._range_stacked = (
                np.vstack(self._range_low),
                np.vstack(self._range_high),
            )
        return self._range_stacked

    def contains_packed(self, packed: np.ndarray, codes: Optional[np.ndarray] = None) -> np.ndarray:
        """Batched membership of fully specified packed probe words.

        ``codes`` may be passed alongside to avoid re-unpacking when
        code-range entries have to be checked.
        """
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        if packed.ndim != 2 or packed.shape[1] != self.word_codec.num_words:
            raise ShapeError("probe rows do not match the codec word width")
        num_probes = packed.shape[0]
        hits = np.fromiter(
            (row.tobytes() in self._exact_rows for row in packed),
            dtype=bool,
            count=num_probes,
        )
        ternary = self._ternary_arrays()
        if ternary is not None and not np.all(hits):
            misses = np.nonzero(~hits)[0]
            hits[misses] |= self._match_ternary(packed[misses], ternary)
        ranges = self._range_arrays()
        if ranges is not None and not np.all(hits):
            misses = np.nonzero(~hits)[0]
            probe_codes = (
                codes[misses]
                if codes is not None
                else self.word_codec.unpack_codes(packed[misses])
            )
            hits[misses] |= self._match_ranges(probe_codes, *ranges)
        return hits

    def contains_codes(self, codes: np.ndarray) -> np.ndarray:
        """Batched membership of probes given as ``(N, P)`` code matrices."""
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        return self.contains_packed(self.word_codec.pack_codes(codes), codes=codes)

    # ------------------------------------------------------------------
    def _match_ternary(self, probes: np.ndarray, planes: TernaryPlanes) -> np.ndarray:
        num_entries, num_words = planes.values.shape
        out = np.zeros(probes.shape[0], dtype=bool)
        chunk = max(1, _CHUNK_ELEMENTS // max(1, num_entries * num_words))
        for start in range(0, probes.shape[0], chunk):
            block = probes[start : start + chunk]
            mismatch = (block[:, None, :] ^ planes.values[None, :, :]) & planes.masks[
                None, :, :
            ]
            out[start : start + chunk] = np.logical_not(
                mismatch.any(axis=2)
            ).any(axis=1)
        return out

    def _match_ranges(
        self, probe_codes: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        num_entries, num_positions = low.shape
        out = np.zeros(probe_codes.shape[0], dtype=bool)
        chunk = max(1, _CHUNK_ELEMENTS // max(1, num_entries * num_positions))
        for start in range(0, probe_codes.shape[0], chunk):
            block = probe_codes[start : start + chunk]
            inside = (block[:, None, :] >= low[None, :, :]) & (
                block[:, None, :] <= high[None, :, :]
            )
            out[start : start + chunk] = inside.all(axis=2).any(axis=1)
        return out

    # ------------------------------------------------------------------
    @property
    def num_exact(self) -> int:
        return len(self._exact_rows)

    @property
    def num_ternary(self) -> int:
        return len(self._ternary_values) + len(self._pending_values)

    @property
    def num_ranges(self) -> int:
        return len(self._range_low)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedMatcher(exact={self.num_exact}, ternary={self.num_ternary}, "
            f"ranges={self.num_ranges})"
        )
