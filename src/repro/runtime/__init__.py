"""Vectorised bit-packed pattern runtime.

This package is the shared substrate under every monitor family:

* :mod:`repro.runtime.packing` — ``(N, B)`` bool matrices ↔ ``(N, W)``
  bit-packed ``uint64`` matrices, plus vectorised popcount;
* :mod:`repro.runtime.codec` — batched binarisation of activation vectors
  against cut points, ternary value/mask bit-planes and code ranges for the
  Δ-robust abstractions;
* :mod:`repro.runtime.matcher` — TCAM-style vectorised set membership
  mirroring the canonical BDD representation;
* :mod:`repro.runtime.engine` — batched scoring with a per-layer activation
  cache so monitors sharing a network share forward passes.

Batched API contract
--------------------
``warn_batch(inputs)`` is the authoritative scoring path of every monitor;
``warn`` / ``verdict`` are thin single-row wrappers over it, so batch and
single-sample answers agree by construction on any fixed workload.
"""

from .codec import PatternCodec, TernaryPlanes, WordCodec, default_tolerance
from .engine import ActivationCache, BatchScore, BatchScoringEngine
from .matcher import PackedMatcher
from .packing import (
    WORD_BITS,
    pack_bool_matrix,
    popcount,
    unpack_bool_matrix,
    words_for_bits,
)

__all__ = [
    "WORD_BITS",
    "words_for_bits",
    "pack_bool_matrix",
    "unpack_bool_matrix",
    "popcount",
    "WordCodec",
    "PatternCodec",
    "TernaryPlanes",
    "default_tolerance",
    "PackedMatcher",
    "ActivationCache",
    "BatchScore",
    "BatchScoringEngine",
]
