"""Vectorised bit-packed pattern runtime.

This package is the shared substrate under every monitor family:

* :mod:`repro.runtime.packing` — ``(N, B)`` bool matrices ↔ ``(N, W)``
  bit-packed ``uint64`` matrices, plus vectorised popcount;
* :mod:`repro.runtime.codec` — batched binarisation of activation vectors
  against cut points, ternary value/mask bit-planes and code ranges for the
  Δ-robust abstractions;
* :mod:`repro.runtime.matcher` — TCAM-style vectorised set membership
  mirroring the canonical BDD representation;
* :mod:`repro.runtime.kernels` — pluggable matcher execution back-ends
  (``numpy`` reference, numba-``compiled`` fused pass, ``sharded``
  thread-pool driver) behind a ``matcher_backends()`` registry, selected
  per matcher or via ``REPRO_MATCHER_BACKEND``;
* :mod:`repro.runtime.engine` — batched scoring with a per-layer activation
  cache so monitors sharing a network share forward passes.

Batched API contract
--------------------
``warn_batch(inputs)`` is the authoritative scoring path of every monitor;
``warn`` / ``verdict`` are thin single-row wrappers over it, so batch and
single-sample answers agree by construction on any fixed workload.
"""

from .codec import PatternCodec, TernaryPlanes, WordCodec, default_tolerance
from .engine import ActivationCache, BatchScore, BatchScoringEngine
from .kernels import (
    DEFAULT_MATCHER_BACKEND,
    HAVE_NUMBA,
    MATCHER_BACKEND_ENV,
    MatcherKernel,
    MatchPlan,
    matcher_backends,
    register_matcher_backend,
    resolve_matcher_backend,
    unregister_matcher_backend,
)
from .matcher import PackedMatcher
from .packing import (
    WORD_BITS,
    full_mask_words,
    pack_bool_matrix,
    popcount,
    tail_word_mask,
    unpack_bool_matrix,
    words_for_bits,
)

__all__ = [
    "WORD_BITS",
    "words_for_bits",
    "pack_bool_matrix",
    "unpack_bool_matrix",
    "popcount",
    "tail_word_mask",
    "full_mask_words",
    "WordCodec",
    "PatternCodec",
    "TernaryPlanes",
    "default_tolerance",
    "PackedMatcher",
    "MatcherKernel",
    "MatchPlan",
    "matcher_backends",
    "register_matcher_backend",
    "unregister_matcher_backend",
    "resolve_matcher_backend",
    "MATCHER_BACKEND_ENV",
    "DEFAULT_MATCHER_BACKEND",
    "HAVE_NUMBA",
    "ActivationCache",
    "BatchScore",
    "BatchScoringEngine",
]
