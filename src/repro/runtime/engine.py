"""Batched runtime scoring: shared forward passes across monitors.

A deployment typically runs several monitors against the *same* network —
a standard and a robust variant on one layer, or an ensemble spanning
layers.  Scoring them naively repeats the network forward pass once per
monitor per evaluation batch.  :class:`BatchScoringEngine` computes the
layer activations of an input batch once, caches them keyed by a content
fingerprint of the batch, and feeds every monitor its slice — so N monitors
on one network cost one forward pass, and re-scoring the same evaluation set
(parameter sweeps, standard-vs-robust comparisons) costs zero forward passes
after the first.

The cached activations are produced by the same sequential layer loop as
``Sequential.forward_to`` on the same batch, so engine-mediated scoring is
bit-identical to calling ``monitor.warn_batch`` directly.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..nn.network import Sequential

__all__ = ["ActivationCache", "BatchScore", "BatchScoringEngine"]


def _fingerprint(inputs: np.ndarray) -> Tuple:
    """Content fingerprint of an input batch (shape + BLAKE2 digest)."""
    inputs = np.ascontiguousarray(inputs)
    digest = hashlib.blake2b(inputs.tobytes(), digest_size=16).digest()
    return (inputs.shape, inputs.dtype.str, digest)


class ActivationCache:
    """LRU cache of per-layer activations of recently scored input batches.

    One entry holds the outputs of *every* layer for one input batch (a
    single sequential pass produces them all), so monitors on different
    layers share the entry.  Entries are keyed by the input batch content
    *and* a digest of the network weights, so continuing to train the
    network invalidates the cache instead of silently serving stale
    activations.

    A second LRU level (:meth:`bound_arrays`) caches the *symbolic* side of
    robust monitor construction: the ``(lows, highs)`` perturbation-estimate
    matrices of an input batch at one layer under one
    :class:`~repro.monitors.perturbation.PerturbationSpec`.  Keys add the
    spec's ``(Δ, k_p, method)`` identity on top of the content/weights key,
    so fitting several robust monitor families with the same perturbation
    model on the same training set pays for one propagation, and a sweep
    over ``Δ`` values reuses the cached layer-``k_p`` anchor activations
    (the concrete half of every propagation) across all deltas.

    Both LRU levels are guarded by one reentrant lock, so a cache (and the
    engine wrapping it) may be shared between a streaming scorer's worker
    thread and any number of submitting/evaluating threads.  Lookups that
    miss compute the forward pass (or propagation) while holding the lock:
    concurrent requests for the *same* batch then cost one pass total, which
    on the serving path matters more than letting distinct batches overlap.
    """

    def __init__(
        self,
        network: Sequential,
        max_entries: int = 16,
        star_lp_backend=None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError("max_entries must be at least 1")
        self.network = network
        self.max_entries = int(max_entries)
        #: Star-LP back-end suggestion forwarded to every star-method
        #: propagation this cache performs (see repro.symbolic.star_lp).
        #: ``None`` defers to REPRO_STAR_LP_BACKEND / the stacked default.
        #: Deliberately *not* part of the bound-entry cache key: all
        #: registered backends are pinned equivalent, so the backend choice
        #: changes how bounds are computed, never what they are.
        self.star_lp_backend = star_lp_backend
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple, List[np.ndarray]]" = OrderedDict()
        self._bound_entries: "OrderedDict[Tuple, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.bound_hits = 0
        self.bound_misses = 0

    def _weights_digest(self) -> bytes:
        """Digest of the network parameters (cheap next to a forward pass)."""
        hasher = hashlib.blake2b(digest_size=16)
        for weight in self.network.get_weights():
            hasher.update(np.ascontiguousarray(weight).tobytes())
        return hasher.digest()

    def activation_entry(self, inputs: np.ndarray) -> List[np.ndarray]:
        """Cached per-layer activations of ``inputs`` for *every* layer.

        One lookup serves any number of monitors on any layers of the batch:
        the content/weights key is hashed once per batch, not once per
        monitor (hashing a wide batch costs more than slicing its entry).
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        with self._lock:
            key = _fingerprint(inputs) + (self._weights_digest(),)
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                entry = self.network.activations(inputs)
                self._entries[key] = entry
                if len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
            else:
                self.hits += 1
                self._entries.move_to_end(key)
            return entry

    def layer_activations(self, inputs: np.ndarray, layer_index: int) -> np.ndarray:
        """Activations of ``layer_index`` for ``inputs`` (batched, cached)."""
        entry = self.activation_entry(inputs)
        if not 1 <= layer_index <= len(entry):
            raise ConfigurationError(
                f"layer index {layer_index} outside [1, {len(entry)}]"
            )
        return entry[layer_index - 1]

    def bound_arrays(
        self, inputs: np.ndarray, layer_index: int, spec
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(lows, highs)`` perturbation estimates of a batch.

        ``spec`` is a :class:`~repro.monitors.perturbation.PerturbationSpec`;
        the result equals ``collect_bound_arrays(network, inputs,
        layer_index, spec)``.  Anchor activations at the perturbation layer
        are pulled from (and inserted into) the activation level of the
        cache, so propagations of the same batch under different deltas or
        back-ends share one concrete forward pass.
        """
        from ..monitors.perturbation import collect_bound_arrays

        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        with self._lock:
            key = (
                _fingerprint(inputs)
                + (self._weights_digest(),)
                + ("bounds", int(layer_index))
                + spec.cache_key
            )
            entry = self._bound_entries.get(key)
            if entry is not None:
                self.bound_hits += 1
                self._bound_entries.move_to_end(key)
                return entry
            self.bound_misses += 1
            # The layer_activations level computes (or replays) the full
            # forward pass; k_p = 0 anchors are the raw inputs themselves.
            anchors = (
                inputs
                if spec.layer == 0
                else self.layer_activations(inputs, spec.layer)
            )
            entry = collect_bound_arrays(
                self.network,
                inputs,
                layer_index,
                spec,
                anchors=anchors,
                star_lp_backend=self.star_lp_backend,
            )
            # The entry is handed out by reference to every bound monitor;
            # freezing it turns an accidental in-place edit (which would
            # poison the cache for all sharers) into an immediate error.
            for array in entry:
                array.setflags(write=False)
            self._bound_entries[key] = entry
            if len(self._bound_entries) > self.max_entries:
                self._bound_entries.popitem(last=False)
            return entry

    @property
    def num_entries(self) -> int:
        """Current number of cached activation entries (thread-safe)."""
        with self._lock:
            return len(self._entries)

    @property
    def num_bound_entries(self) -> int:
        """Current number of cached bound-matrix entries (thread-safe)."""
        with self._lock:
            return len(self._bound_entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bound_entries.clear()


@dataclass
class BatchScore:
    """Result of one batched scoring pass: per-monitor warning vectors."""

    warns: Dict[str, np.ndarray] = field(default_factory=dict)
    verdicts: Optional[Dict[str, List]] = None

    def warning_rate(self, name: str) -> float:
        warnings = self.warns[name]
        if warnings.size == 0:
            raise ConfigurationError("warning_rate needs at least one scored input")
        return float(np.mean(warnings))


class BatchScoringEngine:
    """Score many monitors on one input batch with shared forward passes.

    Monitors attached to the engine's network are fed cached layer
    activations; any other object exposing ``warn_batch`` (class-conditional
    monitors, quantitative wrappers, monitors of a different network) is
    scored through its own batched path unchanged.
    """

    def __init__(
        self,
        network: Sequential,
        max_cache_entries: int = 16,
        matcher_backend=None,
        star_lp_backend=None,
    ) -> None:
        self.network = network
        self.cache = ActivationCache(
            network,
            max_entries=max_cache_entries,
            star_lp_backend=star_lp_backend,
        )
        #: Matcher-kernel back-end suggestion for monitors bound to this
        #: engine: pattern monitors fitted while bound adopt it for their
        #: pattern sets unless they carry an explicit choice of their own
        #: (see ActivationMonitor.matcher_backend_choice).  ``None`` defers
        #: to the ``REPRO_MATCHER_BACKEND`` env var / ``numpy`` default.
        self.matcher_backend = matcher_backend
        #: Star-LP back-end suggestion for star-method bound propagations
        #: performed through this engine's cache; ``None`` defers to the
        #: ``REPRO_STAR_LP_BACKEND`` env var / ``stacked`` default.
        self.star_lp_backend = star_lp_backend

    # ------------------------------------------------------------------
    def layer_features(self, inputs: np.ndarray, layer_index: int) -> np.ndarray:
        """Cached full-layer activations for ``inputs``."""
        return self.cache.layer_activations(inputs, layer_index)

    def bound_arrays(
        self, inputs: np.ndarray, layer_index: int, spec
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cached batched perturbation estimates (see :meth:`ActivationCache.bound_arrays`)."""
        return self.cache.bound_arrays(inputs, layer_index, spec)

    def _shares_network(self, monitor) -> bool:
        return getattr(monitor, "network", None) is self.network and hasattr(
            monitor, "warn_batch_from_layer"
        )

    def score_batch(
        self,
        monitors: Mapping[str, object],
        inputs: np.ndarray,
        want_verdicts: bool = False,
        use_cache: bool = True,
    ) -> BatchScore:
        """Warning vectors (and optionally full verdicts) for every monitor.

        The batch's per-layer activations are computed (or fetched) *once*
        and sliced per monitor, however many monitors share the network.
        ``use_cache=False`` skips the activation cache entirely — the same
        sequential layer walk, but without fingerprinting the batch or
        inserting an entry.  That is the right trade for one-shot batches
        that will never be re-scored (e.g. streaming micro-batches, each of
        which is fresh content): hashing a wide batch costs more than the
        small forward passes it would deduplicate.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        score = BatchScore(verdicts={} if want_verdicts else None)
        if inputs.shape[0] == 0:
            # A 0-frame batch costs nothing: no forward pass, no cache entry,
            # one empty vector per monitor.  (Width-0 rows are *not* short-
            # circuited — they must fail the forward pass like any other
            # malformed batch.)
            for name in monitors:
                score.warns[name] = np.zeros(0, dtype=bool)
                if want_verdicts:
                    score.verdicts[name] = []
            return score
        entry: Optional[List[np.ndarray]] = None
        for name, monitor in monitors.items():
            if self._shares_network(monitor):
                if entry is None:
                    entry = (
                        self.cache.activation_entry(inputs)
                        if use_cache
                        else self.network.activations(inputs)
                    )
                if not 1 <= monitor.layer_index <= len(entry):
                    raise ConfigurationError(
                        f"layer index {monitor.layer_index} outside "
                        f"[1, {len(entry)}]"
                    )
                activations = entry[monitor.layer_index - 1]
                if want_verdicts:
                    verdicts = monitor.verdict_batch_from_layer(activations)
                    score.verdicts[name] = verdicts
                    score.warns[name] = np.fromiter(
                        (v.warn for v in verdicts), dtype=bool, count=len(verdicts)
                    )
                else:
                    score.warns[name] = monitor.warn_batch_from_layer(activations)
            else:
                if want_verdicts and hasattr(monitor, "verdict_batch"):
                    verdicts = monitor.verdict_batch(inputs)
                    score.verdicts[name] = verdicts
                    score.warns[name] = np.fromiter(
                        (v.warn for v in verdicts), dtype=bool, count=len(verdicts)
                    )
                else:
                    score.warns[name] = np.asarray(
                        monitor.warn_batch(inputs), dtype=bool
                    )
        return score

    def warn_batch(self, monitor, inputs: np.ndarray) -> np.ndarray:
        """Single-monitor convenience wrapper over :meth:`score_batch`."""
        return self.score_batch({"monitor": monitor}, inputs).warns["monitor"]
