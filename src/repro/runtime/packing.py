"""Vectorised bit-packing primitives for activation patterns.

An activation word over ``B`` bits is stored as ``ceil(B / 64)`` unsigned
64-bit machine words, bit ``j`` of the word living in machine word
``j // 64`` at bit offset ``j % 64`` (LSB-first inside each machine word).
A batch of ``N`` words is therefore a ``(N, W)`` ``uint64`` matrix, and every
codec/matcher operation in :mod:`repro.runtime` is a handful of NumPy kernel
calls over such matrices instead of a Python loop over samples.

Only the bit layout is defined here; semantic encodings (interval codes,
ternary don't-care planes) live in :mod:`repro.runtime.codec`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, ShapeError

__all__ = [
    "WORD_BITS",
    "words_for_bits",
    "pack_bool_matrix",
    "unpack_bool_matrix",
    "popcount",
    "tail_word_mask",
    "full_mask_words",
]

#: Number of pattern bits stored per machine word.
WORD_BITS = 64

_SHIFTS = np.arange(WORD_BITS, dtype=np.uint64)


def words_for_bits(num_bits: int) -> int:
    """Number of ``uint64`` machine words needed to store ``num_bits`` bits."""
    if num_bits <= 0:
        raise ConfigurationError("num_bits must be positive")
    return (int(num_bits) + WORD_BITS - 1) // WORD_BITS


def tail_word_mask(num_bits: int) -> np.uint64:
    """Mask of the *valid* bits of the last machine word of a packed row.

    For widths that are an exact multiple of 64 the whole word is valid;
    otherwise only the low ``num_bits % 64`` bits are.  Packed rows always
    keep their padding bits zero (pinned by the matcher tail-masking tests),
    so whole-word equality compares stay exact at any bit width.
    """
    remainder = int(num_bits) % WORD_BITS
    if remainder == 0:
        return np.uint64(0xFFFF_FFFF_FFFF_FFFF)
    return np.uint64((1 << remainder) - 1)


def full_mask_words(num_bits: int) -> np.ndarray:
    """The packed all-ones word of ``num_bits`` bits (padding bits zero)."""
    num_words = words_for_bits(num_bits)
    mask = np.full(num_words, 0xFFFF_FFFF_FFFF_FFFF, dtype=np.uint64)
    mask[-1] = tail_word_mask(num_bits)
    return mask


def pack_bool_matrix(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(N, B)`` boolean matrix into a ``(N, W)`` ``uint64`` matrix.

    Column ``j`` of ``bits`` becomes bit ``j % 64`` of machine word
    ``j // 64``.  The trailing padding bits of the last machine word are
    always zero, so packed rows can be compared and hashed directly.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ShapeError("pack_bool_matrix expects a 2-D (batch, bits) matrix")
    num_rows, num_bits = bits.shape
    if num_bits == 0:
        raise ShapeError("cannot pack zero-width words")
    num_words = words_for_bits(num_bits)
    padded = np.zeros((num_rows, num_words * WORD_BITS), dtype=np.uint64)
    padded[:, :num_bits] = bits.astype(bool)
    chunks = padded.reshape(num_rows, num_words, WORD_BITS)
    return np.bitwise_or.reduce(chunks << _SHIFTS[None, None, :], axis=2)


def unpack_bool_matrix(packed: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`: recover the ``(N, B)`` bool matrix."""
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ShapeError("unpack_bool_matrix expects a 2-D (batch, words) matrix")
    num_words = words_for_bits(num_bits)
    if packed.shape[1] != num_words:
        raise ShapeError(
            f"{num_bits} bits need {num_words} machine words per row, got "
            f"{packed.shape[1]}"
        )
    bits = (packed[:, :, None] >> _SHIFTS[None, None, :]) & np.uint64(1)
    return bits.reshape(packed.shape[0], num_words * WORD_BITS)[:, :num_bits].astype(bool)


if hasattr(np, "bitwise_count"):

    def popcount(packed: np.ndarray) -> np.ndarray:
        """Per-element population count of a ``uint64`` array."""
        return np.bitwise_count(np.asarray(packed, dtype=np.uint64)).astype(np.int64)

else:  # pragma: no cover - NumPy < 2.0 fallback

    _BYTE_POPCOUNT = np.array(
        [bin(value).count("1") for value in range(256)], dtype=np.int64
    )

    def popcount(packed: np.ndarray) -> np.ndarray:
        """Per-element population count of a ``uint64`` array."""
        packed = np.ascontiguousarray(np.asarray(packed, dtype=np.uint64))
        as_bytes = packed.view(np.uint8).reshape(packed.shape + (8,))
        return _BYTE_POPCOUNT[as_bytes].sum(axis=-1)
