"""Binary Decision Diagram substrate.

A from-scratch reduced ordered BDD (ROBDD) manager plus the
:class:`~repro.bdd.patterns.PatternSet` wrapper used by the Boolean and
interval activation-pattern monitors to store sets of activation words with
don't-care expansion (``word2set``) at no exponential cost.
"""

from .manager import FALSE, TRUE, BDDManager
from .patterns import DONT_CARE, PatternSet

__all__ = ["BDDManager", "FALSE", "TRUE", "PatternSet", "DONT_CARE"]
