"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

The paper stores sets of Boolean activation words inside BDDs (reference
[12], Bryant's classic construction) so that the ``word2set`` expansion of
don't-care symbols never causes an exponential blow-up: a ternary word such
as ``(1, -, -, 0)`` becomes the two-literal cube ``b1 ∧ ¬b4`` regardless of
how many positions are unconstrained.

This module provides a small but complete ROBDD implementation:

* hash-consed nodes with a unique table (canonical form);
* the ``ite`` (if-then-else) operator with a computed-table cache, from which
  conjunction, disjunction, negation, xor and implication are derived;
* restriction, existential quantification, model counting and model
  enumeration;
* cube construction from partial assignments, which is exactly what the
  monitor's ``word2set`` needs.

Node references are plain integers (indices into the manager's node list),
``0`` being the constant FALSE terminal and ``1`` the constant TRUE terminal.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError

__all__ = ["BDDManager", "FALSE", "TRUE"]

FALSE = 0
TRUE = 1


class BDDManager:
    """Manager owning the node store, unique table and operation caches.

    Parameters
    ----------
    num_vars:
        Number of Boolean variables.  Variables are indexed ``0..num_vars-1``
        and ordered by their index (smaller index closer to the root).
    """

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise ConfigurationError("num_vars must be non-negative")
        self.num_vars = int(num_vars)
        # Node i is a triple (var, low, high); terminals use var = num_vars.
        self._var: List[int] = [self.num_vars, self.num_vars]
        self._low: List[int] = [FALSE, TRUE]
        self._high: List[int] = [FALSE, TRUE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # node store
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of allocated nodes, including the two terminals."""
        return len(self._var)

    def node(self, ref: int) -> Tuple[int, int, int]:
        """Return the ``(var, low, high)`` triple of node ``ref``."""
        return self._var[ref], self._low[ref], self._high[ref]

    def is_terminal(self, ref: int) -> bool:
        return ref in (FALSE, TRUE)

    def _make(self, var: int, low: int, high: int) -> int:
        """Hash-consed node constructor enforcing the reduction rules."""
        if low == high:
            return low
        key = (var, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        ref = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = ref
        return ref

    def var(self, index: int) -> int:
        """Return the BDD for the literal ``x_index``."""
        self._check_var(index)
        return self._make(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """Return the BDD for the negated literal ``¬x_index``."""
        self._check_var(index)
        return self._make(index, TRUE, FALSE)

    def _check_var(self, index: int) -> None:
        if not 0 <= index < self.num_vars:
            raise ConfigurationError(
                f"variable index {index} outside [0, {self.num_vars})"
            )

    # ------------------------------------------------------------------
    # core operator: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """Return the BDD of ``(f ∧ g) ∨ (¬f ∧ h)``.

        The recursion is the textbook one; locals are bound aggressively and
        the cofactor expansion is inlined because this is the single hottest
        loop of the BDD subsystem (every pattern insertion funnels into it).
        """
        # Terminal shortcuts.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cache = self._ite_cache
        cached = cache.get(key)
        if cached is not None:
            return cached
        var = self._var
        lows = self._low
        highs = self._high
        f_var, g_var, h_var = var[f], var[g], var[h]
        top = f_var
        if g_var < top:
            top = g_var
        if h_var < top:
            top = h_var
        if f_var == top:
            f_low, f_high = lows[f], highs[f]
        else:
            f_low = f_high = f
        if g_var == top:
            g_low, g_high = lows[g], highs[g]
        else:
            g_low = g_high = g
        if h_var == top:
            h_low, h_high = lows[h], highs[h]
        else:
            h_low = h_high = h
        low = self.ite(f_low, g_low, h_low)
        high = self.ite(f_high, g_high, h_high)
        if low == high:
            result = low
        else:
            unique_key = (top, low, high)
            unique = self._unique
            result = unique.get(unique_key)
            if result is None:
                result = len(var)
                var.append(top)
                lows.append(low)
                highs.append(high)
                unique[unique_key] = result
        cache[key] = result
        return result

    def _cofactors(self, ref: int, var: int) -> Tuple[int, int]:
        if self._var[ref] == var:
            return self._low[ref], self._high[ref]
        return ref, ref

    # ------------------------------------------------------------------
    # derived Boolean operations
    # ------------------------------------------------------------------
    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.negate(g), g)

    def apply_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def negate(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def conjoin(self, refs: Iterable[int]) -> int:
        """Conjunction of an iterable of BDDs (TRUE for the empty iterable)."""
        result = TRUE
        for ref in refs:
            result = self.apply_and(result, ref)
            if result == FALSE:
                return FALSE
        return result

    def disjoin(self, refs: Iterable[int]) -> int:
        """Disjunction of an iterable of BDDs (FALSE for the empty iterable)."""
        result = FALSE
        for ref in refs:
            result = self.apply_or(result, ref)
            if result == TRUE:
                return TRUE
        return result

    def disjoin_balanced(self, refs: Sequence[int]) -> int:
        """Disjunction by balanced pairwise reduction.

        Equivalent to :meth:`disjoin` but merges operands tournament-style,
        which keeps the intermediate BDDs small when unioning many cubes at
        once (the bulk-insertion fast path of
        :meth:`repro.bdd.patterns.PatternSet.add_patterns`).
        """
        level: List[int] = [ref for ref in refs if ref != FALSE]
        if not level:
            return FALSE
        while len(level) > 1:
            merged: List[int] = []
            for index in range(0, len(level) - 1, 2):
                result = self.apply_or(level[index], level[index + 1])
                if result == TRUE:
                    return TRUE
                merged.append(result)
            if len(level) % 2:
                merged.append(level[-1])
            level = merged
        return level[0]

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def restrict(self, f: int, assignment: Mapping[int, bool]) -> int:
        """Partial evaluation of ``f`` under a partial variable assignment."""
        if self.is_terminal(f):
            return f
        var, low, high = self.node(f)
        if var in assignment:
            return self.restrict(high if assignment[var] else low, assignment)
        new_low = self.restrict(low, assignment)
        new_high = self.restrict(high, assignment)
        return self._make(var, new_low, new_high)

    def exists(self, f: int, variables: Sequence[int]) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        result = f
        for var in variables:
            self._check_var(var)
            result = self.apply_or(
                self.restrict(result, {var: False}), self.restrict(result, {var: True})
            )
        return result

    def forall(self, f: int, variables: Sequence[int]) -> int:
        """Universally quantify ``variables`` out of ``f``."""
        result = f
        for var in variables:
            self._check_var(var)
            result = self.apply_and(
                self.restrict(result, {var: False}), self.restrict(result, {var: True})
            )
        return result

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: Sequence[bool]) -> bool:
        """Evaluate ``f`` on a complete assignment (index = variable)."""
        if len(assignment) != self.num_vars:
            raise ConfigurationError(
                f"assignment length {len(assignment)} does not match "
                f"{self.num_vars} variables"
            )
        ref = f
        while not self.is_terminal(ref):
            var, low, high = self.node(ref)
            ref = high if assignment[var] else low
        return ref == TRUE

    def count_solutions(self, f: int) -> int:
        """Number of complete assignments satisfying ``f``."""
        return self.count_solutions_exact(f)

    def _count_scaled(self, ref: int, cache: Dict[int, int]) -> int:
        """Count solutions with the standard 2^{gap} scaling recursion."""
        if ref == FALSE:
            return 0
        if ref == TRUE:
            return 1
        if ref in cache:
            return cache[ref]
        var, low, high = self.node(ref)
        low_var = self._var[low]
        high_var = self._var[high]
        low_count = self._count_scaled(low, cache) * (1 << (low_var - var - 1))
        high_count = self._count_scaled(high, cache) * (1 << (high_var - var - 1))
        result = low_count + high_count
        cache[ref] = result
        return result

    def count_solutions_exact(self, f: int) -> int:
        """Exact model count over all ``num_vars`` variables."""
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << self.num_vars
        root_var = self._var[f]
        return self._count_scaled(f, {}) * (1 << root_var)

    def iterate_models(self, f: int, limit: Optional[int] = None) -> Iterator[Tuple[bool, ...]]:
        """Yield complete satisfying assignments of ``f`` (up to ``limit``)."""
        emitted = 0

        def recurse(ref: int, var: int, partial: List[bool]) -> Iterator[Tuple[bool, ...]]:
            nonlocal emitted
            if limit is not None and emitted >= limit:
                return
            if var == self.num_vars:
                if ref == TRUE:
                    emitted += 1
                    yield tuple(partial)
                return
            if ref == FALSE:
                return
            node_var = self._var[ref]
            if node_var > var:
                for value in (False, True):
                    partial.append(value)
                    yield from recurse(ref, var + 1, partial)
                    partial.pop()
                return
            _, low, high = self.node(ref)
            partial.append(False)
            yield from recurse(low, var + 1, partial)
            partial.pop()
            partial.append(True)
            yield from recurse(high, var + 1, partial)
            partial.pop()

        yield from recurse(f, 0, [])

    def dag_size(self, f: int) -> int:
        """Number of distinct internal nodes reachable from ``f``."""
        seen = set()

        def visit(ref: int) -> None:
            if self.is_terminal(ref) or ref in seen:
                return
            seen.add(ref)
            _, low, high = self.node(ref)
            visit(low)
            visit(high)

        visit(f)
        return len(seen)

    # ------------------------------------------------------------------
    # cube helpers (the building block of word2set)
    # ------------------------------------------------------------------
    def cube(self, literals: Mapping[int, bool]) -> int:
        """Conjunction of literals: ``{var: value}`` ignores absent variables.

        This is exactly the paper's ``word2set`` trick: a ternary word with
        don't-cares becomes the cube over its constrained positions only, so
        the BDD size is linear in the number of constrained bits.  Built
        bottom-up with the hash-consing inlined — one pattern insertion calls
        this once per word, making it the second-hottest BDD loop after
        :meth:`ite`.
        """
        num_vars = self.num_vars
        unique = self._unique
        var_list = self._var
        low_list = self._low
        high_list = self._high
        result = TRUE
        for var in sorted(literals, reverse=True):
            if not 0 <= var < num_vars:
                raise ConfigurationError(
                    f"variable index {var} outside [0, {num_vars})"
                )
            if literals[var]:
                key = (var, FALSE, result)
            else:
                key = (var, result, FALSE)
            ref = unique.get(key)
            if ref is None:
                ref = len(var_list)
                var_list.append(var)
                low_list.append(key[1])
                high_list.append(key[2])
                unique[key] = ref
            result = ref
        return result

    def from_assignment(self, assignment: Sequence[bool]) -> int:
        """Cube encoding one complete assignment."""
        if len(assignment) != self.num_vars:
            raise ConfigurationError(
                f"assignment length {len(assignment)} does not match "
                f"{self.num_vars} variables"
            )
        return self.cube({index: bool(value) for index, value in enumerate(assignment)})

    def clear_caches(self) -> None:
        """Drop the operation cache (unique table is kept for canonicity)."""
        self._ite_cache.clear()
