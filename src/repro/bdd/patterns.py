"""Activation-pattern sets stored in BDDs with a vectorised packed mirror.

Monitors built from Boolean (one bit per neuron) or interval (multiple bits
per neuron) abstractions need a set data structure over fixed-width binary
words that supports:

* insertion of fully specified words — one at a time or as a deduplicated
  bit-packed batch (:meth:`PatternSet.add_patterns`);
* insertion of *ternary* words containing don't-care symbols — the paper's
  ``word2set`` — without enumerating the exponential expansion, again one at
  a time or as batched value/mask bit-planes;
* insertion of words whose positions carry *sets* of admissible codes (the
  robust interval monitor of Section III-C), with a bulk code-range variant;
* membership queries (single word or a whole batch at once),
  Hamming-distance-relaxed membership, cardinality and size introspection.

Two synchronised representations back the set.  The **BDD** (via
:class:`~repro.bdd.manager.BDDManager`) is canonical: model counting, DAG
size and Hamming relaxation come from it, and bits map to BDD variables in
word order (bit 0 of neuron 0 first), matching the paper's example encoding
``(¬b10) ∧ (b20 ∨ b21) ∧ …``.  The **packed mirror**
(:class:`~repro.runtime.matcher.PackedMatcher`) stores the same patterns as
flat NumPy structures and answers :meth:`PatternSet.contains_batch` with a
few broadcast kernels instead of one BDD walk per row.  Every insertion API
updates both; if a pattern ever cannot be mirrored exactly (a non-contiguous
admissible code set), the mirror degrades to a sound pre-filter and batched
queries fall back to the BDD for unresolved rows.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..runtime.codec import TernaryPlanes, WordCodec
from ..runtime.matcher import PackedMatcher
from ..runtime.packing import unpack_bool_matrix
from .manager import FALSE, TRUE, BDDManager

__all__ = ["TernarySymbol", "PatternSet", "DONT_CARE"]

#: Symbol used in ternary words for an unconstrained bit.
DONT_CARE = "-"

TernarySymbol = object  # 0, 1 or DONT_CARE


class PatternSet:
    """A set of fixed-width binary words represented as a BDD.

    Parameters
    ----------
    num_positions:
        Number of monitored neurons (word positions).
    bits_per_position:
        Number of bits used to encode each position (1 for on/off monitors,
        2 or more for interval monitors).
    matcher_backend:
        Matcher-kernel back-end for :meth:`contains_batch` — a registry name
        from :func:`repro.runtime.kernels.matcher_backends`, a ready kernel
        instance, or ``None`` for the ``REPRO_MATCHER_BACKEND`` /
        ``numpy`` default.  Only execution speed depends on it; every
        back-end is bit-for-bit equivalent.
    """

    def __init__(
        self,
        num_positions: int,
        bits_per_position: int = 1,
        matcher_backend=None,
    ) -> None:
        if num_positions <= 0:
            raise ConfigurationError("num_positions must be positive")
        if bits_per_position <= 0:
            raise ConfigurationError("bits_per_position must be positive")
        self.num_positions = int(num_positions)
        self.bits_per_position = int(bits_per_position)
        self.num_bits = self.num_positions * self.bits_per_position
        self.manager = BDDManager(self.num_bits)
        self.codec = WordCodec(self.num_positions, self.bits_per_position)
        self._matcher = PackedMatcher(self.codec, backend=matcher_backend)
        self._mirror_complete = True
        self._root = FALSE
        self._insertions = 0
        # True while the canonical BDD lags behind the packed mirror (lazy
        # cold start; see from_packed_state).  While deferred, insertions go
        # to the mirror only and _ensure_bdd replays the *whole* mirror on
        # first BDD-dependent use — so incremental refit of a format-2
        # restored set never pays a BDD build it does not need.
        self._bdd_deferred = False

    # ------------------------------------------------------------------
    # bit-index bookkeeping
    # ------------------------------------------------------------------
    def bit_index(self, position: int, bit: int) -> int:
        """BDD variable index of ``bit`` (MSB first) of neuron ``position``."""
        if not 0 <= position < self.num_positions:
            raise ConfigurationError(
                f"position {position} outside [0, {self.num_positions})"
            )
        if not 0 <= bit < self.bits_per_position:
            raise ConfigurationError(
                f"bit {bit} outside [0, {self.bits_per_position})"
            )
        return position * self.bits_per_position + bit

    def _code_bits(self, code: int) -> Tuple[bool, ...]:
        """MSB-first bit tuple of an integer code for one position."""
        if not 0 <= code < (1 << self.bits_per_position):
            raise ConfigurationError(
                f"code {code} does not fit in {self.bits_per_position} bits"
            )
        return tuple(
            bool((code >> (self.bits_per_position - 1 - bit)) & 1)
            for bit in range(self.bits_per_position)
        )

    def _word_to_assignment(self, word: Sequence[int]) -> List[bool]:
        if len(word) != self.num_positions:
            raise ConfigurationError(
                f"word has {len(word)} positions, expected {self.num_positions}"
            )
        assignment: List[bool] = []
        for code in word:
            assignment.extend(self._code_bits(int(code)))
        return assignment

    def _validate_code_matrix(self, words: np.ndarray) -> np.ndarray:
        words = np.atleast_2d(np.asarray(words, dtype=np.int64))
        if words.ndim != 2 or words.shape[1] != self.num_positions:
            raise ConfigurationError(
                f"words have {words.shape[-1]} positions, expected "
                f"{self.num_positions}"
            )
        if words.size and (
            words.min() < 0 or words.max() >= (1 << self.bits_per_position)
        ):
            raise ConfigurationError(
                f"codes must fit in {self.bits_per_position} bits"
            )
        return words

    # ------------------------------------------------------------------
    # packed-state persistence (fast cold start)
    # ------------------------------------------------------------------
    @property
    def bdd_materialised(self) -> bool:
        """False while a packed-state restore has not been replayed yet."""
        return not self._bdd_deferred

    def packed_state(self) -> Dict[str, np.ndarray]:
        """Flat-array image of the set, suitable for ``.npz`` persistence.

        The image is the packed mirror's structures (exact rows, ternary
        value/mask planes, code ranges) — a complete description of the set
        whenever the mirror is exact, and far more compact than the word
        enumeration for ternary/range entries (no don't-care or Cartesian
        expansion).  Restore with :meth:`from_packed_state`.
        """
        if not self._mirror_complete:
            raise ConfigurationError(
                "the packed mirror is not exact for this set (a non-contiguous "
                "code set was inserted); packed-state export is unavailable"
            )
        return self._matcher.export_state()

    def set_matcher_backend(self, backend) -> None:
        """Re-bind batched membership to another matcher kernel back-end.

        The stored patterns are untouched — only the execution engine of
        :meth:`contains_batch` changes, so this is safe on a live set.
        """
        self._matcher.set_backend(backend)

    @property
    def matcher_backend(self) -> str:
        """Registry name of the active matcher kernel."""
        return self._matcher.backend_name

    @classmethod
    def from_packed_state(
        cls,
        num_positions: int,
        bits_per_position: int,
        state: Dict[str, np.ndarray],
        insertions: Optional[int] = None,
        matcher_backend=None,
    ) -> "PatternSet":
        """Rebuild a set from :meth:`packed_state` with a *lazy* BDD.

        The packed mirror — which answers every batched membership query —
        is restored directly from the flat arrays, so the set can score
        operational batches immediately.  The canonical BDD is only built
        (replayed from the mirror itself) on first use of a BDD-dependent
        operation: model counting, Hamming relaxation or word iteration.
        Bulk insertions on a deferred set extend the mirror *without*
        triggering the replay — that is what makes incremental refit of a
        deployed (format-2 restored) monitor cost array appends instead of
        a BDD build.  Cold-starting a deployed monitor therefore pays array
        I/O instead of one BDD build.
        """
        obj = cls(
            num_positions,
            bits_per_position=bits_per_position,
            matcher_backend=matcher_backend,
        )
        exact = np.ascontiguousarray(state["exact"], dtype=np.uint64)
        values = np.ascontiguousarray(state["ternary_values"], dtype=np.uint64)
        masks = np.ascontiguousarray(state["ternary_masks"], dtype=np.uint64)
        range_low = np.asarray(state["range_low"], dtype=np.int64)
        range_high = np.asarray(state["range_high"], dtype=np.int64)
        if values.shape != masks.shape or range_low.shape != range_high.shape:
            raise ConfigurationError("packed state arrays are inconsistent")
        if exact.shape[0]:
            obj._matcher.add_exact_packed(exact)
        if values.shape[0]:
            obj._matcher.add_ternary(TernaryPlanes(values=values, masks=masks))
        if range_low.shape[0]:
            obj._matcher.add_code_ranges(range_low, range_high)
        total_rows = int(exact.shape[0] + values.shape[0] + range_low.shape[0])
        obj._bdd_deferred = total_rows > 0
        obj._insertions = int(insertions) if insertions is not None else total_rows
        return obj

    def _ensure_bdd(self) -> None:
        """Replay the packed mirror into the canonical BDD when deferred.

        The replay reads the mirror's *current* exported state, so any bulk
        insertions performed while deferred are included — the BDD always
        materialises equal to the mirror, however late.
        """
        if not self._bdd_deferred:
            return
        self._bdd_deferred = False
        state = self._matcher.export_state()
        parts: List[int] = []
        exact = state["exact"]
        if exact.shape[0]:
            bit_rows = unpack_bool_matrix(exact, self.num_bits)
            parts.append(
                self.manager.disjoin_balanced(
                    [self.manager.from_assignment(list(row)) for row in bit_rows]
                )
            )
        values, masks = state["ternary_values"], state["ternary_masks"]
        if values.shape[0]:
            value_bits = unpack_bool_matrix(values, self.num_bits)
            mask_bits = unpack_bool_matrix(masks, self.num_bits)
            cubes = []
            for value_row, mask_row in zip(value_bits, mask_bits):
                literals = {
                    int(index): bool(value_row[index])
                    for index in np.nonzero(mask_row)[0]
                }
                cubes.append(self.manager.cube(literals))
            parts.append(self.manager.disjoin_balanced(cubes))
        range_low, range_high = state["range_low"], state["range_high"]
        if range_low.shape[0]:
            row_bdds = [
                self._range_row_bdd(
                    [int(code) for code in low_row], [int(code) for code in high_row]
                )
                for low_row, high_row in zip(range_low, range_high)
            ]
            parts.append(self.manager.disjoin_balanced(row_bdds))
        for part in parts:
            self._root = self.manager.apply_or(self._root, part)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        """BDD root of the current set (exposed for advanced composition)."""
        self._ensure_bdd()
        return self._root

    @property
    def insertions(self) -> int:
        """Number of inserted patterns (bulk inserts count each row)."""
        return self._insertions

    def _pack_bits_python(self, true_indices: Iterable[int]) -> List[int]:
        """Cheap single-row packer (pure-int bit twiddling, no array temps)."""
        machine_words = [0] * self.codec.num_words
        for index in true_indices:
            machine_words[index >> 6] |= 1 << (index & 63)
        return machine_words

    @staticmethod
    def _row_bytes(machine_words: Sequence[int]) -> bytes:
        """Little-endian byte image of a packed row (the exact-set hash key)."""
        return b"".join(word.to_bytes(8, "little") for word in machine_words)

    def add_word(self, word: Sequence[int]) -> None:
        """Insert a fully specified word (one integer code per position)."""
        assignment = self._word_to_assignment(word)
        if not self._bdd_deferred:
            cube = self.manager.from_assignment(assignment)
            self._root = self.manager.apply_or(self._root, cube)
        self._matcher.add_exact_bytes(
            self._row_bytes(
                self._pack_bits_python(
                    index for index, bit in enumerate(assignment) if bit
                )
            )
        )
        self._insertions += 1

    def add_patterns(self, words: np.ndarray) -> None:
        """Bulk-insert a ``(N, num_positions)`` matrix of code words.

        The batch is bit-packed, deduplicated, and unioned into the BDD with
        a balanced disjunction over the distinct cubes — far cheaper than one
        :meth:`add_word` per sample when training batches repeat patterns.
        """
        words = self._validate_code_matrix(words)
        if words.shape[0] == 0:
            return
        packed = self.codec.pack_codes(words)
        if not self._bdd_deferred:
            unique = np.unique(packed, axis=0)
            bit_rows = unpack_bool_matrix(unique, self.num_bits)
            cubes = [self.manager.from_assignment(list(row)) for row in bit_rows]
            self._root = self.manager.apply_or(
                self._root, self.manager.disjoin_balanced(cubes)
            )
        self._matcher.add_exact_packed(packed)
        self._insertions += int(words.shape[0])

    def add_ternary_word(self, word: Sequence[object]) -> None:
        """Insert a ternary word of ``0`` / ``1`` / :data:`DONT_CARE` symbols.

        Only meaningful for ``bits_per_position == 1``; each don't-care leaves
        the corresponding BDD variable unconstrained (the paper's
        ``word2set``).
        """
        if self.bits_per_position != 1:
            raise ConfigurationError(
                "ternary words require a 1-bit-per-position pattern set"
            )
        if len(word) != self.num_positions:
            raise ConfigurationError(
                f"word has {len(word)} positions, expected {self.num_positions}"
            )
        literals = {}
        value_words = [0] * self.codec.num_words
        mask_words = [0] * self.codec.num_words
        for position, symbol in enumerate(word):
            if symbol == DONT_CARE:
                continue
            if symbol not in (0, 1, True, False):
                raise ConfigurationError(f"invalid ternary symbol {symbol!r}")
            value = bool(symbol)
            literals[position] = value
            mask_words[position >> 6] |= 1 << (position & 63)
            if value:
                value_words[position >> 6] |= 1 << (position & 63)
        if not self._bdd_deferred:
            cube = self.manager.cube(literals)
            self._root = self.manager.apply_or(self._root, cube)
        if len(literals) == self.num_positions:
            self._matcher.add_exact_bytes(self._row_bytes(value_words))
        else:
            self._matcher.add_ternary_raw(value_words, mask_words)
        self._insertions += 1

    def add_ternary_patterns(self, planes: TernaryPlanes) -> None:
        """Bulk-insert ternary words given as value/mask bit-planes.

        Each row contributes the cube over its constrained bits only — the
        ``word2set`` trick — and the batch of cubes is unioned with a
        balanced disjunction.
        """
        if self.bits_per_position != 1:
            raise ConfigurationError(
                "ternary patterns require a 1-bit-per-position pattern set"
            )
        if len(planes) == 0:
            return
        if planes.values.shape[1] != self.codec.num_words:
            raise ConfigurationError(
                "ternary planes do not match this pattern set's word width"
            )
        if not self._bdd_deferred:
            value_bits = unpack_bool_matrix(planes.values, self.num_bits)
            mask_bits = unpack_bool_matrix(planes.masks, self.num_bits)
            cubes = []
            for value_row, mask_row in zip(value_bits, mask_bits):
                literals = {
                    int(index): bool(value_row[index])
                    for index in np.nonzero(mask_row)[0]
                }
                cubes.append(self.manager.cube(literals))
            self._root = self.manager.apply_or(
                self._root, self.manager.disjoin_balanced(cubes)
            )
        self._matcher.add_ternary(planes)
        self._insertions += len(planes)

    def add_code_sets(self, code_sets: Sequence[Iterable[int]]) -> None:
        """Insert every word whose position ``i`` code lies in ``code_sets[i]``.

        This is the robust interval monitor's ``word2set``: position ``i`` may
        take any code from a non-empty set (e.g. ``{01, 10}``), and the
        inserted set is the Cartesian product of the per-position sets.  The
        BDD is built as a conjunction over positions of per-position
        disjunctions, so the cost is linear in the total number of listed
        codes — never in the product.  Contiguous sets (the only kind the
        monotone interval encoding produces) are mirrored exactly; a
        non-contiguous set degrades batched queries to the BDD fallback.
        """
        if len(code_sets) != self.num_positions:
            raise ConfigurationError(
                f"expected {self.num_positions} code sets, got {len(code_sets)}"
            )
        normalised: List[List[int]] = []
        for position, codes in enumerate(code_sets):
            codes = sorted(set(int(code) for code in codes))
            if not codes:
                raise ConfigurationError(
                    f"position {position} has an empty admissible code set"
                )
            for code in codes:
                self._code_bits(code)  # validates the range
            normalised.append(codes)
        contiguous = all(
            codes[-1] - codes[0] + 1 == len(codes) for codes in normalised
        )
        if contiguous:
            low = np.array([[codes[0] for codes in normalised]], dtype=np.int64)
            high = np.array([[codes[-1] for codes in normalised]], dtype=np.int64)
            self.add_range_patterns(low, high)
            return
        self._ensure_bdd()
        self._insert_code_sets_bdd(normalised)
        self._mirror_complete = False
        self._insertions += 1

    def add_range_patterns(self, low_codes: np.ndarray, high_codes: np.ndarray) -> None:
        """Bulk-insert words given as per-position contiguous code ranges.

        Row ``i`` inserts the Cartesian product of the ranges
        ``low_codes[i, p] .. high_codes[i, p]`` — the robust interval
        abstraction of Section III-C for a whole training batch at once.
        """
        low_codes = self._validate_code_matrix(low_codes)
        high_codes = self._validate_code_matrix(high_codes)
        if low_codes.shape != high_codes.shape:
            raise ConfigurationError("low/high code matrices must share a shape")
        if np.any(low_codes > high_codes):
            raise ConfigurationError("code range lower end exceeds upper end")
        if low_codes.shape[0] == 0:
            return
        if not self._bdd_deferred:
            row_bdds = []
            for low_row, high_row in zip(low_codes, high_codes):
                row_bdds.append(
                    self._range_row_bdd(
                        [int(code) for code in low_row],
                        [int(code) for code in high_row],
                    )
                )
            self._root = self.manager.apply_or(
                self._root, self.manager.disjoin_balanced(row_bdds)
            )
        self._matcher.add_code_ranges(low_codes, high_codes)
        self._insertions += int(low_codes.shape[0])

    def _range_row_bdd(self, low_row: Sequence[int], high_row: Sequence[int]) -> int:
        position_bdds: List[int] = []
        full = 1 << self.bits_per_position
        for position, (low, high) in enumerate(zip(low_row, high_row)):
            if high - low + 1 == full:
                position_bdds.append(TRUE)
                continue
            alternatives = []
            for code in range(low, high + 1):
                bits = self._code_bits(code)
                literals = {
                    self.bit_index(position, bit): bits[bit]
                    for bit in range(self.bits_per_position)
                }
                alternatives.append(self.manager.cube(literals))
            position_bdds.append(self.manager.disjoin(alternatives))
        return self.manager.conjoin(position_bdds)

    def _insert_code_sets_bdd(self, code_sets: Sequence[Sequence[int]]) -> None:
        position_bdds: List[int] = []
        for position, codes in enumerate(code_sets):
            if len(codes) == (1 << self.bits_per_position):
                position_bdds.append(TRUE)
                continue
            alternatives = []
            for code in codes:
                bits = self._code_bits(code)
                literals = {
                    self.bit_index(position, bit): bits[bit]
                    for bit in range(self.bits_per_position)
                }
                alternatives.append(self.manager.cube(literals))
            position_bdds.append(self.manager.disjoin(alternatives))
        cube = self.manager.conjoin(position_bdds)
        self._root = self.manager.apply_or(self._root, cube)

    def union(self, other: "PatternSet") -> None:
        """In-place union with another pattern set sharing the same shape."""
        if (
            other.num_positions != self.num_positions
            or other.bits_per_position != self.bits_per_position
        ):
            raise ConfigurationError("pattern sets have incompatible shapes")
        self._ensure_bdd()
        if other.manager is self.manager:
            other._ensure_bdd()
            self._root = self.manager.apply_or(self._root, other._root)
            self._matcher.merge(other._matcher)
            self._mirror_complete = self._mirror_complete and other._mirror_complete
            return
        # Different managers: re-insert other's words (sound but slower).
        words = list(other.iterate_words())
        if words:
            self.add_patterns(np.asarray(words, dtype=np.int64))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def contains(self, word: Sequence[int]) -> bool:
        """True when the fully specified ``word`` belongs to the set."""
        self._ensure_bdd()
        assignment = self._word_to_assignment(word)
        return self.manager.evaluate(self._root, assignment)

    def contains_batch(self, words: np.ndarray) -> np.ndarray:
        """Vectorised membership of a ``(N, num_positions)`` code matrix.

        Answered from the packed mirror (hash set + ternary/range broadcast
        kernels); rows the mirror cannot settle — only possible after a
        non-contiguous :meth:`add_code_sets` — fall back to one BDD
        evaluation each.  Agrees with :meth:`contains` row by row.
        """
        words = self._validate_code_matrix(words)
        if words.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        packed = self.codec.pack_codes(words)
        hits = self._matcher.contains_packed(packed, codes=words)
        if not self._mirror_complete and not np.all(hits):
            bit_rows = unpack_bool_matrix(packed, self.num_bits)
            for index in np.nonzero(~hits)[0]:
                hits[index] = self.manager.evaluate(
                    self._root, list(bit_rows[index])
                )
        return hits

    def contains_within_hamming(self, word: Sequence[int], distance: int) -> bool:
        """Membership relaxed by Hamming distance over *positions*.

        Returns True when some stored word differs from ``word`` in at most
        ``distance`` positions.  Distance 0 reduces to :meth:`contains`.  This
        reproduces the enlargement knob of the original DATE'19 monitor.
        """
        if distance < 0:
            raise ConfigurationError("Hamming distance must be non-negative")
        self._ensure_bdd()
        if self.contains(word):
            return True
        if distance == 0:
            return False
        base_assignment = self._word_to_assignment(word)
        positions = range(self.num_positions)
        for radius in range(1, min(distance, self.num_positions) + 1):
            for flipped in combinations(positions, radius):
                remaining = self._root
                fixed = {}
                for position in positions:
                    if position in flipped:
                        continue
                    for bit in range(self.bits_per_position):
                        index = self.bit_index(position, bit)
                        fixed[index] = base_assignment[index]
                restricted = self.manager.restrict(remaining, fixed)
                if restricted != FALSE:
                    return True
        return False

    def cardinality(self) -> int:
        """Number of fully specified words in the set."""
        self._ensure_bdd()
        return self.manager.count_solutions_exact(self._root)

    def dag_size(self) -> int:
        """Number of BDD nodes used to represent the set."""
        self._ensure_bdd()
        return self.manager.dag_size(self._root)

    def is_empty(self) -> bool:
        # The deferred flag is only set when the mirror holds at least one
        # row, and deferred insertions keep it set — so deferred means
        # non-empty without consulting the BDD.
        return not self._bdd_deferred and self._root == FALSE

    def iterate_words(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield the fully specified words of the set as code tuples."""
        self._ensure_bdd()
        for model in self.manager.iterate_models(self._root, limit=limit):
            word = []
            for position in range(self.num_positions):
                code = 0
                for bit in range(self.bits_per_position):
                    code = (code << 1) | int(model[self.bit_index(position, bit)])
                word.append(code)
            yield tuple(word)

    def __len__(self) -> int:
        return self.cardinality()

    def __contains__(self, word: Sequence[int]) -> bool:
        return self.contains(word)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PatternSet(positions={self.num_positions}, "
            f"bits={self.bits_per_position}, nodes={self.dag_size()})"
        )
