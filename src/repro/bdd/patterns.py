"""Activation-pattern sets stored in BDDs.

Monitors built from Boolean (one bit per neuron) or interval (multiple bits
per neuron) abstractions need a set data structure over fixed-width binary
words that supports:

* insertion of a fully specified word;
* insertion of a *ternary* word containing don't-care symbols — the paper's
  ``word2set`` — without enumerating the exponential expansion;
* insertion of a word whose positions carry *sets* of admissible codes (the
  robust interval monitor of Section III-C);
* membership queries, Hamming-distance-relaxed membership, cardinality and
  size introspection.

:class:`PatternSet` wraps a :class:`~repro.bdd.manager.BDDManager` with this
vocabulary.  Bits are mapped to BDD variables in word order (bit 0 of neuron
0 first), matching the paper's example encoding ``(¬b10) ∧ (b20 ∨ b21) ∧ …``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .manager import FALSE, TRUE, BDDManager

__all__ = ["TernarySymbol", "PatternSet", "DONT_CARE"]

#: Symbol used in ternary words for an unconstrained bit.
DONT_CARE = "-"

TernarySymbol = object  # 0, 1 or DONT_CARE


class PatternSet:
    """A set of fixed-width binary words represented as a BDD.

    Parameters
    ----------
    num_positions:
        Number of monitored neurons (word positions).
    bits_per_position:
        Number of bits used to encode each position (1 for on/off monitors,
        2 or more for interval monitors).
    """

    def __init__(self, num_positions: int, bits_per_position: int = 1) -> None:
        if num_positions <= 0:
            raise ConfigurationError("num_positions must be positive")
        if bits_per_position <= 0:
            raise ConfigurationError("bits_per_position must be positive")
        self.num_positions = int(num_positions)
        self.bits_per_position = int(bits_per_position)
        self.num_bits = self.num_positions * self.bits_per_position
        self.manager = BDDManager(self.num_bits)
        self._root = FALSE
        self._insertions = 0

    # ------------------------------------------------------------------
    # bit-index bookkeeping
    # ------------------------------------------------------------------
    def bit_index(self, position: int, bit: int) -> int:
        """BDD variable index of ``bit`` (MSB first) of neuron ``position``."""
        if not 0 <= position < self.num_positions:
            raise ConfigurationError(
                f"position {position} outside [0, {self.num_positions})"
            )
        if not 0 <= bit < self.bits_per_position:
            raise ConfigurationError(
                f"bit {bit} outside [0, {self.bits_per_position})"
            )
        return position * self.bits_per_position + bit

    def _code_bits(self, code: int) -> Tuple[bool, ...]:
        """MSB-first bit tuple of an integer code for one position."""
        if not 0 <= code < (1 << self.bits_per_position):
            raise ConfigurationError(
                f"code {code} does not fit in {self.bits_per_position} bits"
            )
        return tuple(
            bool((code >> (self.bits_per_position - 1 - bit)) & 1)
            for bit in range(self.bits_per_position)
        )

    def _word_to_assignment(self, word: Sequence[int]) -> List[bool]:
        if len(word) != self.num_positions:
            raise ConfigurationError(
                f"word has {len(word)} positions, expected {self.num_positions}"
            )
        assignment: List[bool] = []
        for code in word:
            assignment.extend(self._code_bits(int(code)))
        return assignment

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        """BDD root of the current set (exposed for advanced composition)."""
        return self._root

    @property
    def insertions(self) -> int:
        """Number of insert calls performed so far."""
        return self._insertions

    def add_word(self, word: Sequence[int]) -> None:
        """Insert a fully specified word (one integer code per position)."""
        assignment = self._word_to_assignment(word)
        cube = self.manager.from_assignment(assignment)
        self._root = self.manager.apply_or(self._root, cube)
        self._insertions += 1

    def add_ternary_word(self, word: Sequence[object]) -> None:
        """Insert a ternary word of ``0`` / ``1`` / :data:`DONT_CARE` symbols.

        Only meaningful for ``bits_per_position == 1``; each don't-care leaves
        the corresponding BDD variable unconstrained (the paper's
        ``word2set``).
        """
        if self.bits_per_position != 1:
            raise ConfigurationError(
                "ternary words require a 1-bit-per-position pattern set"
            )
        if len(word) != self.num_positions:
            raise ConfigurationError(
                f"word has {len(word)} positions, expected {self.num_positions}"
            )
        literals = {}
        for position, symbol in enumerate(word):
            if symbol == DONT_CARE:
                continue
            if symbol not in (0, 1, True, False):
                raise ConfigurationError(f"invalid ternary symbol {symbol!r}")
            literals[self.bit_index(position, 0)] = bool(symbol)
        cube = self.manager.cube(literals)
        self._root = self.manager.apply_or(self._root, cube)
        self._insertions += 1

    def add_code_sets(self, code_sets: Sequence[Iterable[int]]) -> None:
        """Insert every word whose position ``i`` code lies in ``code_sets[i]``.

        This is the robust interval monitor's ``word2set``: position ``i`` may
        take any code from a non-empty set (e.g. ``{01, 10}``), and the
        inserted set is the Cartesian product of the per-position sets.  The
        BDD is built as a conjunction over positions of per-position
        disjunctions, so the cost is linear in the total number of listed
        codes — never in the product.
        """
        if len(code_sets) != self.num_positions:
            raise ConfigurationError(
                f"expected {self.num_positions} code sets, got {len(code_sets)}"
            )
        position_bdds: List[int] = []
        for position, codes in enumerate(code_sets):
            codes = sorted(set(int(code) for code in codes))
            if not codes:
                raise ConfigurationError(
                    f"position {position} has an empty admissible code set"
                )
            for code in codes:
                self._code_bits(code)  # validates the range
            if len(codes) == (1 << self.bits_per_position):
                # Every code admissible: the position is unconstrained.
                position_bdds.append(TRUE)
                continue
            alternatives = []
            for code in codes:
                bits = self._code_bits(code)
                literals = {
                    self.bit_index(position, bit): bits[bit]
                    for bit in range(self.bits_per_position)
                }
                alternatives.append(self.manager.cube(literals))
            position_bdds.append(self.manager.disjoin(alternatives))
        cube = self.manager.conjoin(position_bdds)
        self._root = self.manager.apply_or(self._root, cube)
        self._insertions += 1

    def union(self, other: "PatternSet") -> None:
        """In-place union with another pattern set sharing the same shape."""
        if (
            other.num_positions != self.num_positions
            or other.bits_per_position != self.bits_per_position
        ):
            raise ConfigurationError("pattern sets have incompatible shapes")
        if other.manager is self.manager:
            self._root = self.manager.apply_or(self._root, other._root)
            return
        # Different managers: re-insert other's words (sound but slower).
        for word in other.iterate_words():
            self.add_word(word)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def contains(self, word: Sequence[int]) -> bool:
        """True when the fully specified ``word`` belongs to the set."""
        assignment = self._word_to_assignment(word)
        return self.manager.evaluate(self._root, assignment)

    def contains_within_hamming(self, word: Sequence[int], distance: int) -> bool:
        """Membership relaxed by Hamming distance over *positions*.

        Returns True when some stored word differs from ``word`` in at most
        ``distance`` positions.  Distance 0 reduces to :meth:`contains`.  This
        reproduces the enlargement knob of the original DATE'19 monitor.
        """
        if distance < 0:
            raise ConfigurationError("Hamming distance must be non-negative")
        if self.contains(word):
            return True
        if distance == 0:
            return False
        base_assignment = self._word_to_assignment(word)
        positions = range(self.num_positions)
        for radius in range(1, min(distance, self.num_positions) + 1):
            for flipped in combinations(positions, radius):
                remaining = self._root
                fixed = {}
                for position in positions:
                    if position in flipped:
                        continue
                    for bit in range(self.bits_per_position):
                        index = self.bit_index(position, bit)
                        fixed[index] = base_assignment[index]
                restricted = self.manager.restrict(remaining, fixed)
                if restricted != FALSE:
                    return True
        return False

    def cardinality(self) -> int:
        """Number of fully specified words in the set."""
        return self.manager.count_solutions_exact(self._root)

    def dag_size(self) -> int:
        """Number of BDD nodes used to represent the set."""
        return self.manager.dag_size(self._root)

    def is_empty(self) -> bool:
        return self._root == FALSE

    def iterate_words(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield the fully specified words of the set as code tuples."""
        for model in self.manager.iterate_models(self._root, limit=limit):
            word = []
            for position in range(self.num_positions):
                code = 0
                for bit in range(self.bits_per_position):
                    code = (code << 1) | int(model[self.bit_index(position, bit)])
                word.append(code)
            yield tuple(word)

    def __len__(self) -> int:
        return self.cardinality()

    def __contains__(self, word: Sequence[int]) -> bool:
        return self.contains(word)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PatternSet(positions={self.num_positions}, "
            f"bits={self.bits_per_position}, nodes={self.dag_size()})"
        )
