"""Out-of-process serving: socket front-end + multi-process scoring pool.

The in-process :mod:`repro.service` scorer batches frames on a thread; this
package takes the same contract across process and machine boundaries:

- :mod:`~repro.serving.protocol` — length-prefixed binary wire format with
  typed error frames (stdlib ``struct`` + JSON headers, no dependencies);
- :mod:`~repro.serving.artifacts` — deployment bundles: network + format-2
  monitor artefacts + manifest, the unit a worker process boots from;
- :class:`~repro.serving.WorkerPool` — N ``multiprocessing`` workers, each
  with a private :class:`~repro.runtime.engine.BatchScoringEngine`, fed
  through shared-memory frame slots and one shared dispatch queue with an
  adaptive flush deadline; crashed workers restart and their in-flight
  batches are re-queued;
- :class:`~repro.serving.ScoringServer` / :class:`~repro.serving.ScoringClient`
  — the TCP face and its pipelining clients (blocking and asyncio).

Verdicts over the wire are bit-identical to offline
:meth:`~repro.monitors.base.Monitor.warn_batch` — workers load the same
serialized artefacts the offline path round-trips through.
"""

from .artifacts import DeploymentBundle, save_deployment, update_monitor_artifact
from .client import AsyncScoringClient, ScoringClient
from .pool import AdaptiveBatcher, WorkerPool
from .protocol import (
    DEFAULT_MAX_PAYLOAD,
    Frame,
    FrameDecoder,
    FrameType,
    PROTOCOL_VERSION,
    decode_result,
    decode_score_request,
    encode_frame,
    encode_result,
    encode_score_request,
)
from .ring import SharedFrameRing
from .server import ScoringServer

__all__ = [
    "AdaptiveBatcher",
    "AsyncScoringClient",
    "DEFAULT_MAX_PAYLOAD",
    "DeploymentBundle",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "PROTOCOL_VERSION",
    "ScoringClient",
    "ScoringServer",
    "SharedFrameRing",
    "WorkerPool",
    "decode_result",
    "decode_score_request",
    "encode_frame",
    "encode_result",
    "encode_score_request",
    "save_deployment",
    "update_monitor_artifact",
]
