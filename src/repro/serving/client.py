"""Clients for the scoring protocol: blocking (pipelined) and asyncio.

:class:`ScoringClient` is the deployment-side handle: producers on another
process or machine call :meth:`ScoringClient.score` (blocking) or keep many
:meth:`ScoringClient.score_async` futures in flight on one connection —
requests are pipelined and matched to responses by ``request_id`` by a
background reader thread.  Typed error frames raise the same exception
classes the in-process scorer raises; a lost connection fails every
in-flight future with :class:`~repro.exceptions.RemoteScoringError` and, by
default, the next call transparently reconnects — a restarted server is a
transient, not an outage (pinned by the reconnect tests).

:class:`AsyncScoringClient` speaks the same protocol over asyncio streams
for event-loop producers; one connection, same pipelining, ``await``-shaped.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import threading
from concurrent.futures import Future
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import ProtocolError, RemoteScoringError
from . import protocol

__all__ = ["AsyncScoringClient", "ScoringClient"]


class ScoringClient:
    """Blocking, pipelining client of a :class:`~repro.serving.ScoringServer`.

    Parameters
    ----------
    address:
        ``(host, port)`` of the server.
    timeout:
        Default per-request timeout in seconds (connection setup uses it
        too); individual calls may override it.
    auto_reconnect:
        When True (default), a call on a lost connection dials again
        instead of raising — in-flight requests of the dead connection
        still fail (their responses are gone with it).
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float = 30.0,
        auto_reconnect: bool = True,
        max_payload: int = protocol.DEFAULT_MAX_PAYLOAD,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.timeout = float(timeout)
        self.auto_reconnect = bool(auto_reconnect)
        self.max_payload = int(max_payload)
        self._lock = threading.Lock()  # guards socket handoff + request ids
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[threading.Thread] = None
        self._pending: Dict[int, Future] = {}
        self._ids = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    @property
    def is_connected(self) -> bool:
        with self._lock:
            return self._sock is not None

    def connect(self) -> "ScoringClient":
        """Dial the server (idempotent while connected)."""
        with self._lock:
            if self._closed:
                raise RemoteScoringError("this client has been closed")
            if self._sock is not None:
                return self
            sock = socket.create_connection(self.address, timeout=self.timeout)
            sock.settimeout(None)  # the reader blocks; timeouts are per-future
            self._sock = sock
            self._reader = threading.Thread(
                target=self._read_loop, args=(sock,), name="repro-scoring-client", daemon=True
            )
            self._reader.start()
        return self

    def close(self) -> None:
        """Drop the connection and fail anything still in flight."""
        with self._lock:
            self._closed = True
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        self._fail_pending(RemoteScoringError("client closed"))

    def __enter__(self) -> "ScoringClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reader
    # ------------------------------------------------------------------
    def _read_loop(self, sock: socket.socket) -> None:
        decoder = protocol.FrameDecoder(max_payload=self.max_payload)
        error: Exception = RemoteScoringError("connection lost")
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                for frame in decoder.feed(chunk):
                    self._handle_frame(frame)
        except ProtocolError as exc:
            error = exc
        except OSError:
            pass
        with self._lock:
            if self._sock is sock:  # a newer connection may already exist
                self._sock = None
        self._fail_pending(error)

    def _handle_frame(self, frame: protocol.Frame) -> None:
        with self._lock:
            future = self._pending.pop(frame.request_id, None)
        if future is None:
            return  # response to a request we gave up on
        try:
            if frame.type == protocol.FrameType.RESULT:
                future.set_result(protocol.decode_result(frame.payload))
            elif frame.type == protocol.FrameType.ERROR:
                code, message = protocol.decode_error(frame.payload)
                future.set_exception(protocol.error_to_exception(code, message))
            elif frame.type == protocol.FrameType.PONG:
                future.set_result(frame.payload)
            elif frame.type == protocol.FrameType.STATS_REPLY:
                future.set_result(protocol.decode_json(frame.payload))
            elif frame.type == protocol.FrameType.LIFECYCLE_REPLY:
                future.set_result(protocol.decode_json(frame.payload))
            else:
                future.set_exception(
                    ProtocolError(f"unexpected response frame type {frame.type.name}")
                )
        except ProtocolError as exc:
            future.set_exception(exc)

    def _fail_pending(self, error: Exception) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def _request(self, frame_type: protocol.FrameType, payload: bytes) -> Future:
        with self._lock:
            if self._closed:
                raise RemoteScoringError("this client has been closed")
            sock = self._sock
        if sock is None:
            if not self.auto_reconnect:
                raise RemoteScoringError(
                    f"not connected to {self.address[0]}:{self.address[1]}"
                )
            self.connect()
            with self._lock:
                sock = self._sock
            if sock is None:  # pragma: no cover - immediate re-loss
                raise RemoteScoringError("connection lost during reconnect")
        future: Future = Future()
        with self._lock:
            request_id = next(self._ids)
            self._pending[request_id] = future
        data = protocol.encode_frame(frame_type, request_id, payload)
        try:
            with self._lock:
                sock.sendall(data)
        except OSError as exc:
            with self._lock:
                self._pending.pop(request_id, None)
                if self._sock is sock:
                    self._sock = None
            raise RemoteScoringError(f"send failed: {exc}") from exc
        return future

    def _call(
        self, frame_type: protocol.FrameType, payload: bytes, timeout: Optional[float]
    ):
        """Blocking request with a single transparent retry on a dead link.

        A server restart leaves a half-open socket: the send may succeed
        into the void and only the reader's EOF reveals the loss.  All
        blocking requests are stateless (scoring is pure), so the client
        dials again and retries exactly once — the second failure (or any
        typed server-side error) propagates.
        """
        wait = self.timeout if timeout is None else timeout
        try:
            return self._request(frame_type, payload).result(wait)
        except RemoteScoringError:
            with self._lock:
                if self._closed or not self.auto_reconnect:
                    raise
            return self._request(frame_type, payload).result(wait)

    def score_async(self, frames: np.ndarray) -> Future:
        """Pipeline one score request; future resolves to the per-monitor
        warn vectors ``{name: bool array of len(frames)}``."""
        return self._request(
            protocol.FrameType.SCORE, protocol.encode_score_request(frames)
        )

    def score(
        self, frames: np.ndarray, timeout: Optional[float] = None
    ) -> Dict[str, np.ndarray]:
        """Score a frame batch and block for the verdicts."""
        return self._call(
            protocol.FrameType.SCORE, protocol.encode_score_request(frames), timeout
        )

    def ping(self, timeout: Optional[float] = None) -> bytes:
        """Round-trip liveness probe (echoes its payload)."""
        return self._call(protocol.FrameType.PING, b"ping", timeout)

    def stats(self, timeout: Optional[float] = None) -> dict:
        """Server-side stats snapshot (scorer ledger + server counters)."""
        return self._call(protocol.FrameType.STATS, b"", timeout)

    # ------------------------------------------------------------------
    # lifecycle control (requires a server started with lifecycle=...)
    # ------------------------------------------------------------------
    def lifecycle_status(self, timeout: Optional[float] = None) -> dict:
        """Lifecycle snapshot: per monitor the live version + state machine."""
        return self._call(protocol.FrameType.LIFECYCLE_STATUS, b"", timeout)

    def promote(
        self,
        name: str,
        guard: bool = True,
        watch_budget: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Promote the staged version of ``name``; returns ``{name, version}``.

        A guarded promotion whose shadow evidence is missing or breached
        raises :class:`~repro.exceptions.LifecycleStateError` — the same
        exception an in-process ``LifecycleManager.promote`` raises.
        """
        request: dict = {"name": str(name), "guard": bool(guard)}
        if watch_budget is not None:
            request["watch_budget"] = float(watch_budget)
        # No transparent retry: unlike scoring, a promotion mutates server
        # state — a retry after a lost connection could double-promote.
        wait = self.timeout if timeout is None else timeout
        return self._request(
            protocol.FrameType.PROMOTE, protocol.encode_json(request)
        ).result(wait)

    def rollback(
        self,
        name: str,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Roll ``name`` back to ``version`` (default: the predecessor)."""
        request: dict = {"name": str(name)}
        if version is not None:
            request["version"] = int(version)
        # Single attempt, like promote: rollback mutates server state.
        wait = self.timeout if timeout is None else timeout
        return self._request(
            protocol.FrameType.ROLLBACK, protocol.encode_json(request)
        ).result(wait)

    def shadow_report(
        self, name: Optional[str] = None, timeout: Optional[float] = None
    ) -> dict:
        """Agreement/disagreement ledgers of the attached shadow monitors."""
        request = {} if name is None else {"name": str(name)}
        return self._call(
            protocol.FrameType.SHADOW_REPORT, protocol.encode_json(request), timeout
        )


class AsyncScoringClient:
    """Asyncio counterpart of :class:`ScoringClient` (same wire protocol)."""

    def __init__(
        self,
        address: Tuple[str, int],
        max_payload: int = protocol.DEFAULT_MAX_PAYLOAD,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.max_payload = int(max_payload)
        self._reader_task: Optional[asyncio.Task] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)

    async def connect(self) -> "AsyncScoringClient":
        if self._writer is not None:
            return self
        reader, writer = await asyncio.open_connection(*self.address)
        self._writer = writer
        self._reader_task = asyncio.ensure_future(self._read_loop(reader))
        return self

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        self._fail_pending(RemoteScoringError("client closed"))

    async def __aenter__(self) -> "AsyncScoringClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        decoder = protocol.FrameDecoder(max_payload=self.max_payload)
        error: Exception = RemoteScoringError("connection lost")
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for frame in decoder.feed(chunk):
                    future = self._pending.pop(frame.request_id, None)
                    if future is None or future.done():
                        continue
                    if frame.type == protocol.FrameType.RESULT:
                        future.set_result(protocol.decode_result(frame.payload))
                    elif frame.type == protocol.FrameType.ERROR:
                        code, message = protocol.decode_error(frame.payload)
                        future.set_exception(protocol.error_to_exception(code, message))
                    elif frame.type == protocol.FrameType.PONG:
                        future.set_result(frame.payload)
                    elif frame.type in (
                        protocol.FrameType.STATS_REPLY,
                        protocol.FrameType.LIFECYCLE_REPLY,
                    ):
                        future.set_result(protocol.decode_json(frame.payload))
        except ProtocolError as exc:
            error = exc
        except asyncio.CancelledError:
            raise
        except OSError:
            pass
        self._writer = None
        self._fail_pending(error)

    async def _request(self, frame_type: protocol.FrameType, payload: bytes):
        if self._writer is None:
            await self.connect()
        request_id = next(self._ids)
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(protocol.encode_frame(frame_type, request_id, payload))
        await self._writer.drain()
        return await future

    async def score(self, frames: np.ndarray) -> Dict[str, np.ndarray]:
        return await self._request(
            protocol.FrameType.SCORE, protocol.encode_score_request(frames)
        )

    async def ping(self) -> bytes:
        return await self._request(protocol.FrameType.PING, b"ping")

    async def stats(self) -> dict:
        return await self._request(protocol.FrameType.STATS, b"")

    async def lifecycle_status(self) -> dict:
        return await self._request(protocol.FrameType.LIFECYCLE_STATUS, b"")

    async def promote(
        self, name: str, guard: bool = True, watch_budget: Optional[float] = None
    ) -> dict:
        request: dict = {"name": str(name), "guard": bool(guard)}
        if watch_budget is not None:
            request["watch_budget"] = float(watch_budget)
        return await self._request(
            protocol.FrameType.PROMOTE, protocol.encode_json(request)
        )

    async def rollback(self, name: str, version: Optional[int] = None) -> dict:
        request: dict = {"name": str(name)}
        if version is not None:
            request["version"] = int(version)
        return await self._request(
            protocol.FrameType.ROLLBACK, protocol.encode_json(request)
        )

    async def shadow_report(self, name: Optional[str] = None) -> dict:
        request = {} if name is None else {"name": str(name)}
        return await self._request(
            protocol.FrameType.SHADOW_REPORT, protocol.encode_json(request)
        )
