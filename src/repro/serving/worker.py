"""Scoring worker process: one engine, one artefact load, a task loop.

Each pool worker is a separate Python process — the step that takes the
scorer past the GIL.  On boot it reconstructs the deployment from its
bundle (network + format-2 monitor artefacts, the same files every sibling
loads, so all workers score bit-identical verdicts), builds a private
:class:`~repro.runtime.engine.BatchScoringEngine`, and then loops on the
pool's shared dispatch queue:

1. ``("batch", task_id, slot, nrows, chaos)`` — *claim* the task on the
   result queue (the dispatcher uses claims to re-queue in-flight work if
   this process dies), read the frames out of the shared-memory ring slot,
   score them through one engine pass over every monitor, and reply
   ``("done", ...)`` with the packed per-monitor warn vectors;
2. ``("stop",)`` — exit the loop (one sentinel per worker at shutdown).

Workers also watch a shared **generation counter** (``config.generation``,
a ``multiprocessing.Value`` the pool bumps after atomically swapping a
bundle artefact): the queue read times out periodically, and a generation
ahead of the one the monitors were loaded under triggers an in-place
reload from the bundle, acknowledged with ``("reloaded", worker_id, gen)``.
That is the worker half of lifecycle promotion — the pool pauses dispatch,
drains in-flight batches, swaps the artefact, bumps the generation and
waits for every worker's acknowledgement, so no batch is ever scored by a
mixture of old- and new-generation workers.

A scoring exception answers ``("fail", ...)`` and the worker lives on; only
process death (crash, OOM, kill) is handled by the dispatcher's supervision.
The ``chaos`` field exists for the crash-recovery tests: it makes a worker
die at a precisely awkward moment (after claiming, before scoring), which
is the exact window the re-queue path must cover.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .artifacts import DeploymentBundle
from .ring import SharedFrameRing

__all__ = ["WorkerConfig", "worker_main"]

#: ``chaos`` marker: claim the task, then die without scoring it.
CHAOS_EXIT_AFTER_CLAIM = "exit_after_claim"


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to boot (must stay picklable for spawn)."""

    bundle_dir: str
    ring_name: str
    ring_slots: int
    ring_rows: int
    ring_cols: int
    matcher_backend: Optional[str] = None
    #: Shared lifecycle generation counter (``multiprocessing.Value``); a
    #: bump tells workers to reload their monitors from the bundle.  Shared
    #: ctypes survive spawn pickling when passed through Process args.
    generation: Optional[object] = None


def _pack_warns(warns) -> dict:
    """Per-monitor boolean vectors as raw bytes (cheap to queue-pickle)."""
    return {
        name: np.ascontiguousarray(flags, dtype=bool).astype(np.uint8).tobytes()
        for name, flags in warns.items()
    }


def worker_main(worker_id: int, config: WorkerConfig, task_queue, result_queue) -> None:
    """Process entry point of one scoring worker."""
    from queue import Empty

    from ..runtime.engine import BatchScoringEngine

    ring = SharedFrameRing.attach(
        config.ring_name, config.ring_slots, config.ring_rows, config.ring_cols
    )

    def current_generation() -> int:
        return 0 if config.generation is None else int(config.generation.value)

    try:
        bundle = DeploymentBundle(config.bundle_dir)
        network = bundle.load_network()
        monitors = bundle.load_monitors(network, matcher_backend=config.matcher_backend)
        engine = BatchScoringEngine(network)
        # The generation is read *after* the artefacts: booting mid-swap at
        # worst re-loads identical files on the next bump check.
        loaded_generation = current_generation()
        result_queue.put(
            ("ready", worker_id, os.getpid(), tuple(monitors), loaded_generation)
        )
        while True:
            try:
                message = task_queue.get(timeout=0.2)
            except Empty:
                # Idle: the exact window a lifecycle promotion targets (the
                # pool pauses dispatch before bumping the generation).
                generation = current_generation()
                if generation != loaded_generation:
                    bundle = DeploymentBundle(config.bundle_dir)
                    monitors = bundle.load_monitors(
                        network, matcher_backend=config.matcher_backend
                    )
                    loaded_generation = generation
                    result_queue.put(("reloaded", worker_id, generation))
                continue
            kind = message[0]
            if kind == "stop":
                break
            if kind != "batch":  # pragma: no cover - future-proofing
                continue
            _, task_id, slot, nrows, chaos = message
            # The claim must precede any work: it is the dispatcher's only
            # way to know this batch dies with this process.
            result_queue.put(("claim", task_id, worker_id))
            if chaos == CHAOS_EXIT_AFTER_CLAIM:
                # Simulated crash for the recovery tests: no cleanup, no
                # goodbye — exactly what a segfault or OOM kill looks like.
                os._exit(17)
            frames = ring.read(slot, nrows)
            try:
                # Micro-batches are one-shot content; skip the activation
                # cache exactly like the in-process streaming worker does.
                score = engine.score_batch(monitors, frames, use_cache=False)
                result_queue.put(("done", task_id, worker_id, _pack_warns(score.warns)))
            except BaseException as exc:
                result_queue.put(
                    ("fail", task_id, worker_id, f"{type(exc).__name__}: {exc}")
                )
    finally:
        ring.close()
