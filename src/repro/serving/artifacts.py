"""Deployment bundles: one directory a scoring worker can boot from.

A worker process cannot share Python objects with the front-end — it must
reconstruct the *same* network and monitors from disk.  A deployment bundle
is the unit of that handover: a directory with a ``manifest.json`` naming
one serialised network (``repro.nn.serialization``) and N serialised
monitors (``repro.monitors.serialization``, format-2 packed-mirror archives
by default).  Because the existing save→load round-trip is pinned
bit-identical by the serialization property tests, every worker booted from
a bundle scores exactly the verdicts of the in-process monitors it was
saved from — which is what makes remote verdicts provably equal to offline
``warn_batch``.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from ..exceptions import SerializationError
from ..monitors.serialization import load_monitor, save_monitor
from ..nn.network import Sequential
from ..nn.serialization import load_network, save_network

__all__ = ["DeploymentBundle", "save_deployment", "update_monitor_artifact"]

MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = 1


def save_deployment(
    directory: Union[str, Path],
    network: Sequential,
    monitors: Mapping[str, object],
) -> Path:
    """Write ``network`` + fitted ``monitors`` as a bundle under ``directory``.

    Returns the manifest path.  Monitor artefacts are written in
    serialization format 2 (packed mirror, lazy BDD) so worker cold-start
    is array I/O, not a BDD build.
    """
    if not monitors:
        raise SerializationError("a deployment bundle needs at least one monitor")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    network_path = save_network(network, directory / "network.npz")
    manifest: Dict[str, object] = {
        "format": _MANIFEST_FORMAT,
        "input_dim": int(network.input_dim),
        "network": network_path.name,
        "monitors": {},
    }
    for name, monitor in monitors.items():
        if not isinstance(name, str) or not name:
            raise SerializationError("monitor names in a bundle must be non-empty strings")
        artefact = save_monitor(monitor, directory / f"monitor_{name}.npz")
        manifest["monitors"][name] = artefact.name
    manifest_path = directory / MANIFEST_NAME
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest_path


def update_monitor_artifact(
    bundle: "DeploymentBundle", name: str, source
) -> Path:
    """Atomically replace one monitor artefact of a deployed bundle.

    ``source`` is either a path to an existing format-2 archive (e.g. a
    :class:`~repro.lifecycle.store.MonitorStore` version, which is copied,
    never moved) or a fitted monitor to serialise in place.  The new bytes
    are written to a temporary sibling and ``os.replace``d over the
    bundle's artefact, so a worker (re)booting from the bundle at any
    moment sees either the old archive or the new one — never a torn file.
    The manifest is untouched: lifecycle promotion swaps *content* under a
    stable name, it does not add or remove names.
    """
    if name not in bundle.monitor_paths:
        raise SerializationError(
            f"bundle under {bundle.directory} serves no monitor named "
            f"'{name}' (has: {list(bundle.monitor_paths)})"
        )
    target = bundle.monitor_paths[name]
    tmp_path = target.parent / f".{target.stem}.swap.npz"
    if isinstance(source, (str, Path)):
        source = Path(source)
        if not source.exists():
            raise SerializationError(f"replacement artefact missing: {source}")
        shutil.copyfile(source, tmp_path)
    else:
        save_monitor(source, tmp_path, format=2)
    os.replace(tmp_path, target)
    return target


class DeploymentBundle:
    """A loaded manifest: paths plus loaders for the artefacts it names."""

    def __init__(self, directory: Union[str, Path]) -> None:
        directory = Path(directory)
        if directory.name == MANIFEST_NAME:
            directory = directory.parent
        self.directory = directory
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise SerializationError(f"no {MANIFEST_NAME} under {directory}")
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SerializationError(f"failed to read {manifest_path}: {exc}") from exc
        if int(manifest.get("format", 0)) != _MANIFEST_FORMAT:
            raise SerializationError(
                f"unsupported bundle format {manifest.get('format')!r} in {manifest_path}"
            )
        self.input_dim = int(manifest["input_dim"])
        self.network_path = directory / manifest["network"]
        self.monitor_paths: Dict[str, Path] = {
            name: directory / filename
            for name, filename in manifest["monitors"].items()
        }
        for path in (self.network_path, *self.monitor_paths.values()):
            if not path.exists():
                raise SerializationError(f"bundle artefact missing: {path}")

    @property
    def monitor_names(self):
        return tuple(self.monitor_paths)

    def load_network(self) -> Sequential:
        return load_network(self.network_path)

    def load_monitors(
        self, network: Sequential, matcher_backend: Optional[object] = None
    ) -> Dict[str, object]:
        """Reconstruct every monitor of the bundle against ``network``."""
        return {
            name: load_monitor(path, network, matcher_backend=matcher_backend)
            for name, path in self.monitor_paths.items()
        }

    def describe(self) -> Dict[str, object]:
        return {
            "directory": str(self.directory),
            "input_dim": self.input_dim,
            "monitors": list(self.monitor_paths),
        }
