"""Shared-memory frame ring: zero-copy batch handover to worker processes.

Sending a micro-batch of float64 frames through a ``multiprocessing.Queue``
pickles and copies it twice per hop.  The pool instead allocates one
:mod:`multiprocessing.shared_memory` block, slices it into fixed-size
*slots* (``max_batch`` rows each), writes each outgoing batch into a free
slot, and sends only the tiny ``(slot, nrows)`` coordinate over the control
queue — the worker maps the same block and reads the rows directly.

Slot *accounting* stays entirely on the dispatcher side: a worker never
frees a slot, the dispatcher releases it when the batch's result (or its
post-crash re-dispatch decision) has been handled.  That one-owner rule is
what makes crash recovery safe — a slot written for a worker that died
still holds the frames, so the batch can be re-queued to a sibling without
keeping any second copy.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError, ShapeError

__all__ = ["SharedFrameRing"]


class SharedFrameRing:
    """Fixed-slot ring of ``(rows, cols)`` float64 frame buffers.

    The creating side (``create=True``) owns the segment and must call
    :meth:`unlink` exactly once when the pool shuts down; attached sides
    (worker processes) only :meth:`close` their mapping.
    """

    DTYPE = np.float64

    def __init__(
        self,
        slots: int,
        rows: int,
        cols: int,
        name: Optional[str] = None,
        create: bool = True,
    ) -> None:
        if slots < 1 or rows < 1 or cols < 1:
            raise ConfigurationError("ring slots, rows and cols must all be positive")
        self.slots = int(slots)
        self.rows = int(rows)
        self.cols = int(cols)
        self._slot_bytes = self.rows * self.cols * np.dtype(self.DTYPE).itemsize
        size = self.slots * self._slot_bytes
        self._owner = bool(create)
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        else:
            if name is None:
                raise ConfigurationError("attaching to a ring requires its name")
            self._shm = shared_memory.SharedMemory(name=name)
            if self._shm.size < size:
                self._shm.close()
                raise ConfigurationError(
                    f"shared segment '{name}' is {self._shm.size} bytes, ring "
                    f"geometry needs {size}"
                )
            # NB: attaching registers the segment with the resource tracker
            # a second time, but worker processes inherit the *parent's*
            # tracker (its registry is a name set, so the re-registration
            # dedupes) — unregistering here would strip the creator's entry
            # and turn its eventual unlink() into a tracker error.
        self._view = np.ndarray(
            (self.slots, self.rows, self.cols), dtype=self.DTYPE, buffer=self._shm.buf
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def attach(cls, name: str, slots: int, rows: int, cols: int) -> "SharedFrameRing":
        """Map an existing ring created by another process."""
        return cls(slots, rows, cols, name=name, create=False)

    # ------------------------------------------------------------------
    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.slots:
            raise ConfigurationError(f"slot {slot} outside [0, {self.slots})")

    def write(self, slot: int, frames: np.ndarray) -> int:
        """Copy ``frames`` into ``slot``; returns the row count written."""
        self._check_slot(slot)
        frames = np.atleast_2d(np.asarray(frames, dtype=self.DTYPE))
        if frames.ndim != 2 or frames.shape[1] != self.cols:
            raise ShapeError(
                f"ring slot holds ({self.rows}, {self.cols}) frames, got {frames.shape}"
            )
        if frames.shape[0] > self.rows:
            raise ShapeError(
                f"batch of {frames.shape[0]} rows exceeds the {self.rows}-row slot"
            )
        self._view[slot, : frames.shape[0]] = frames
        return int(frames.shape[0])

    def read(self, slot: int, nrows: int) -> np.ndarray:
        """Copy ``nrows`` frames out of ``slot`` (the copy owns its memory)."""
        self._check_slot(slot)
        if not 0 <= nrows <= self.rows:
            raise ShapeError(f"nrows {nrows} outside [0, {self.rows}]")
        return np.array(self._view[slot, :nrows], dtype=self.DTYPE, copy=True)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (safe to call twice)."""
        view, self._view = self._view, None
        del view
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - second close on some platforms
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only, after every worker detached)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
