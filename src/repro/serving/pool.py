"""Multi-process scoring worker pool behind the streaming submit API.

:class:`WorkerPool` grows the streaming scorer's single worker *thread*
into N worker *processes* — the step that lets the service use every core
instead of time-slicing one GIL.  The front-end surface is unchanged
(``submit`` / ``submit_many`` → one future per frame, ``close(drain=...)``,
a :class:`~repro.service.streaming.ServiceStats` ledger), so anything that
can drive a :class:`~repro.service.StreamingScorer` — including the socket
server — can drive a pool.

Architecture (one shared dispatch queue, N workers)::

    producers ──submit──► AdaptiveBatcher ──dispatcher──► task queue ──► workers
                                │                │  frames via shared-memory ring
    futures  ◄──collector── result queue ◄───────┴────────────┘

* the **dispatcher thread** coalesces frames under the pool's
  :class:`~repro.service.BatchPolicy` with an *adaptive* deadline — the
  flush deadline shrinks as queue depth grows (see :class:`AdaptiveBatcher`),
  so a busy pool feeds idle workers promptly instead of letting frames age
  toward the nominal latency bound — writes each batch into a free
  shared-memory slot and queues only the slot coordinates;
* **workers** (separate processes, each booted from the same deployment
  bundle) claim tasks from the one shared queue, score, and answer on the
  result queue; every worker loads monitors from the same format-2
  artefacts, so verdicts are bit-identical across workers *and* to the
  offline ``warn_batch`` of the monitors the bundle was saved from;
* the **collector thread** resolves futures from results, frees ring slots,
  and supervises liveness: when a worker process dies, its *claimed but
  unanswered* tasks are re-queued to the siblings (the slot still holds the
  frames) and a replacement is spawned, up to ``max_restarts`` — accepted
  frames survive a crash without producers noticing.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as queue_module
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..exceptions import (
    ConfigurationError,
    RemoteScoringError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShapeError,
    WorkerCrashError,
)
from ..service.streaming import (
    BatchPolicy,
    FrameRequest,
    FrameResult,
    MicroBatcher,
    ServiceStats,
)
from .artifacts import DeploymentBundle
from .ring import SharedFrameRing
from .worker import CHAOS_EXIT_AFTER_CLAIM, WorkerConfig, worker_main

__all__ = ["AdaptiveBatcher", "WorkerPool"]

_LOG = logging.getLogger("repro.serving.pool")

#: BLAS threading knobs pinned to one thread in worker processes (read at
#: numpy import time in the child): N scoring processes each spinning a
#: BLAS thread pool would oversubscribe the machine and serialise on it.
_BLAS_ENV = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")


class AdaptiveBatcher(MicroBatcher):
    """Micro-batcher whose flush deadline shrinks as queue depth grows.

    The plain policy waits up to ``max_latency`` for the oldest frame no
    matter how much is queued behind it — sensible for one worker, wasteful
    for a pool: with idle processes available, a deep queue should flush
    *now* and let the hardware work.  The adaptive deadline interpolates
    linearly: empty-ish queue → full ``max_latency`` (coalesce for
    throughput), queue at ``max_batch`` → zero extra wait (``full`` flushes
    anyway).  Deterministic and clock-free like its base class.
    """

    def deadline(self) -> Optional[float]:
        base = super().deadline()
        if base is None:
            return None
        shrink = self.policy.max_latency * min(
            1.0, len(self) / float(self.policy.max_batch)
        )
        return base - shrink

    def flush_reason(self, now: float) -> str:
        """Why a flush at ``now`` fires: size, adaptive (early) or deadline."""
        if self.full:
            return "size"
        base = MicroBatcher.deadline(self)
        if base is not None and now < base:
            return "adaptive"
        return "deadline"


class _Task:
    """One dispatched batch: its futures, ring slot and accounting."""

    __slots__ = ("requests", "slot", "nrows", "reason", "dispatched_at")

    def __init__(self, requests, slot, nrows, reason, dispatched_at):
        self.requests = requests
        self.slot = slot
        self.nrows = nrows
        self.reason = reason
        self.dispatched_at = dispatched_at


class WorkerPool:
    """Process-based scoring pool with the streaming submit/future surface.

    Parameters
    ----------
    bundle:
        A :class:`~repro.serving.artifacts.DeploymentBundle` (or a bundle
        directory path) every worker boots from.
    num_workers:
        Worker process count.
    policy:
        :class:`~repro.service.BatchPolicy` for the adaptive coalescer;
        ``None`` uses ``BatchPolicy(max_batch=64, max_latency=0.005)``.
    mp_context:
        ``multiprocessing`` start method (``"spawn"`` by default: immune to
        fork-vs-threads hazards and identical across platforms).
    slot_count:
        Shared-memory ring slots; ``None`` uses ``2 * num_workers`` so every
        worker can be busy while its next batch is staged.
    max_restarts:
        Crashed-worker replacement budget over the pool's lifetime; once
        exhausted and no worker remains, accepted frames fail with
        :class:`~repro.exceptions.WorkerCrashError`.
    matcher_backend:
        Matcher-kernel registry name workers score with (``None`` defers to
        ``REPRO_MATCHER_BACKEND`` / the numpy default in each worker).
    pin_blas_threads:
        Export single-thread BLAS knobs to worker processes (recommended:
        process-level parallelism replaces BLAS thread pools).
    """

    def __init__(
        self,
        bundle: Union[DeploymentBundle, str, Path],
        num_workers: int = 2,
        policy: Optional[BatchPolicy] = None,
        mp_context: str = "spawn",
        slot_count: Optional[int] = None,
        max_restarts: int = 3,
        matcher_backend: Optional[str] = None,
        pin_blas_threads: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if num_workers < 1:
            raise ConfigurationError("a worker pool needs at least one worker")
        if max_restarts < 0:
            raise ConfigurationError("max_restarts must be non-negative")
        self.bundle = (
            bundle if isinstance(bundle, DeploymentBundle) else DeploymentBundle(bundle)
        )
        self.policy = policy if policy is not None else BatchPolicy(
            max_batch=64, max_latency=0.005
        )
        self.num_workers_requested = int(num_workers)
        self.max_restarts = int(max_restarts)
        self.matcher_backend = matcher_backend
        self.pin_blas_threads = bool(pin_blas_threads)
        self._clock = clock
        self._ctx = multiprocessing.get_context(mp_context)
        slots = int(slot_count) if slot_count is not None else max(2 * num_workers, 2)
        if slots < num_workers:
            raise ConfigurationError("slot_count must be at least num_workers")
        self._ring = SharedFrameRing(slots, self.policy.max_batch, self.bundle.input_dim)
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()

        self.stats = ServiceStats()
        self._batcher = AdaptiveBatcher(self.policy)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._draining = False
        self._stopping = False
        self._broken: Optional[BaseException] = None
        self._free_slots = set(range(slots))
        self._outstanding: Dict[int, _Task] = {}
        self._claims: Dict[int, int] = {}
        self._workers: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._next_task_id = 0
        self._next_worker_id = 0
        self._restarts = 0
        # Lifecycle generation: bumped by reload_workers() after an artefact
        # swap; workers poll it between tasks and reload when behind.
        self._generation = self._ctx.Value("L", 0)
        #: Last generation each worker confirmed (via its "ready" boot
        #: message or a "reloaded" acknowledgement).
        self._reload_acks: Dict[int, int] = {}
        self._dispatch_paused = False
        self._pending_chaos: Optional[str] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._collector: Optional[threading.Thread] = None
        self._collector_stop = threading.Event()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def monitor_names(self):
        """Names of the monitors every worker serves (from the bundle)."""
        return self.bundle.monitor_names

    @property
    def num_workers(self) -> int:
        """Currently live worker processes."""
        with self._lock:
            return sum(1 for proc in self._workers.values() if proc.is_alive())

    @property
    def restarts(self) -> int:
        """Workers replaced after a crash so far."""
        with self._lock:
            return self._restarts

    @property
    def is_running(self) -> bool:
        return self._dispatcher is not None and self._dispatcher.is_alive()

    def describe(self) -> Dict[str, object]:
        with self._lock:
            return {
                "kind": "worker_pool",
                "num_workers": sum(1 for p in self._workers.values() if p.is_alive()),
                "requested_workers": self.num_workers_requested,
                "restarts": self._restarts,
                "monitors": list(self.bundle.monitor_names),
                "ring_slots": self._ring.slots,
                "max_batch": self.policy.max_batch,
                "max_latency": self.policy.max_latency,
                "generation": int(self._generation.value),
            }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        """Start one worker process (caller holds the pool lock)."""
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        config = WorkerConfig(
            bundle_dir=str(self.bundle.directory),
            ring_name=self._ring.name,
            ring_slots=self._ring.slots,
            ring_rows=self._ring.rows,
            ring_cols=self._ring.cols,
            matcher_backend=self.matcher_backend,
            generation=self._generation,
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, config, self._task_queue, self._result_queue),
            name=f"repro-scoring-worker-{worker_id}",
            daemon=True,
        )
        saved = {}
        if self.pin_blas_threads:
            # Env is read at numpy import time in the child; restore the
            # parent's values immediately after the process object exists.
            for key in _BLAS_ENV:
                saved[key] = os.environ.get(key)
                os.environ[key] = "1"
        try:
            process.start()
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        self._workers[worker_id] = process

    def start(self) -> "WorkerPool":
        """Spawn the workers and the dispatcher/collector threads."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("cannot restart a closed worker pool")
            if self._dispatcher is not None and self._dispatcher.is_alive():
                return self
            for _ in range(self.num_workers_requested):
                self._spawn_worker()
            self._collector_stop.clear()
            self._collector = threading.Thread(
                target=self._collect_loop, name="repro-pool-collector", daemon=True
            )
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-pool-dispatcher", daemon=True
            )
            self._collector.start()
            self._dispatcher.start()
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting frames, shut workers down, release the ring.

        ``drain=True`` scores everything already accepted (queued and
        in-flight) before the workers exit; ``drain=False`` cancels queued
        frames (in-flight batches still resolve).  Blocks until every
        worker process has been joined — after ``close`` returns there are
        no child processes left (asserted by the CI end-to-end leg via
        ``multiprocessing.active_children()``).
        """
        to_cancel: List[FrameRequest] = []
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = drain
            if not drain:
                for batch in self._batcher.drain():
                    to_cancel.extend(batch)
            self._wakeup.notify_all()
        cancelled = sum(1 for request in to_cancel if request.future.cancel())
        if cancelled:
            self.stats.record_cancelled(cancelled)
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
        # Everything dispatched resolves through the collector; wait for it.
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while self._outstanding and self._broken is None:
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    break
                self._wakeup.wait(0.05 if remaining is None else min(0.05, remaining))
            self._stopping = True
            workers = list(self._workers.values())
        for _ in workers:
            self._task_queue.put(("stop",))
        for process in workers:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - stuck worker backstop
                process.terminate()
                process.join(5.0)
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout)
        with self._lock:
            self._workers.clear()
        # The queues' feeder threads must not block interpreter exit.
        for q in (self._task_queue, self._result_queue):
            q.cancel_join_thread()
            q.close()
        self._ring.close()
        self._ring.unlink()
        _LOG.info("pool closed (drain=%s, restarts=%d)", drain, self._restarts)

    # ------------------------------------------------------------------
    # submission (mirrors StreamingScorer's front-end contract)
    # ------------------------------------------------------------------
    def _coerce_frames(self, frames: np.ndarray, expect_many: bool) -> np.ndarray:
        frames = np.array(frames, dtype=np.float64, copy=True)
        if frames.ndim == 1 and not expect_many:
            frames = frames[None, :]
        frames = np.atleast_2d(frames)
        if frames.ndim != 2:
            raise ShapeError(
                f"expected a frame vector or (N, d) burst, got shape {frames.shape}"
            )
        if frames.shape[0] and frames.shape[1] != self.bundle.input_dim:
            raise ShapeError(
                f"frame width {frames.shape[1]} does not match the deployment's "
                f"input dimension {self.bundle.input_dim}"
            )
        return frames

    def submit(self, frame: np.ndarray) -> "object":
        """Queue one frame; returns the future of its FrameResult."""
        frames = self._coerce_frames(frame, expect_many=False)
        if frames.shape[0] != 1:
            raise ShapeError("submit() takes exactly one frame; use submit_many")
        return self._submit_coerced(frames)[0]

    def submit_many(self, frames: np.ndarray) -> List["object"]:
        """Queue a burst under one lock acquisition; one future per row."""
        return self._submit_coerced(self._coerce_frames(frames, expect_many=True))

    def _submit_coerced(self, frames: np.ndarray) -> List["object"]:
        now = self._clock()
        requests = [FrameRequest(frame=row, enqueued_at=now) for row in frames]
        with self._lock:
            if self._broken is not None:
                raise WorkerCrashError(
                    f"the worker pool is broken: {self._broken}"
                ) from self._broken
            if self._closed:
                raise ServiceClosedError(
                    "the worker pool is closed and no longer accepts frames"
                )
            if self._dispatcher is None or not self._dispatcher.is_alive():
                raise ServiceClosedError(
                    "the worker pool is not running; call start() first"
                )
            if requests and self._batcher.would_overflow(len(requests)):
                raise ServiceOverloadedError(
                    f"enqueueing {len(requests)} frame(s) would exceed "
                    f"max_pending={self.policy.max_pending}; shed load or widen "
                    "the policy"
                )
            for request in requests:
                self._batcher.append(request)
            if requests:
                self._wakeup.notify_all()
        self.stats.record_submitted(len(requests))
        return [request.future for request in requests]

    # ------------------------------------------------------------------
    # lifecycle: artefact swap + generation-gated worker reload
    # ------------------------------------------------------------------
    def reload_workers(self, swap=None, timeout: float = 10.0) -> bool:
        """Reload every worker's monitors from the bundle; True on success.

        The pool half of lifecycle promotion, in strict order:

        1. **pause** dispatch (frames keep queueing in FIFO order);
        2. **drain** every outstanding batch — in-flight work resolves
           against the old generation before anything changes;
        3. **swap** the bundle artefacts named by ``swap`` (a
           ``{name: path-or-monitor}`` mapping handed to
           :func:`~repro.serving.artifacts.update_monitor_artifact`, each
           an atomic ``os.replace``);
        4. **bump** the shared generation counter and wait until every
           live worker acknowledged it (idle workers notice within their
           queue-poll interval; workers spawned mid-reload — e.g. crash
           replacements — boot from the already-swapped artefacts and
           acknowledge via their ready message);
        5. **resume** dispatch.

        Frames dispatched before the pause score the old monitors, frames
        dispatched after the resume score the new ones — the promotion
        boundary is monotone in submission order.  Returns False when the
        drain or the acknowledgements time out (dispatch resumes either
        way; a False return means generations may be mixed and the caller
        should retry or roll back).
        """
        deadline = self._clock() + float(timeout)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("cannot reload a closed worker pool")
            if self._broken is not None:
                raise WorkerCrashError(
                    f"the worker pool is broken: {self._broken}"
                ) from self._broken
            if self._dispatch_paused:
                raise ConfigurationError("a reload is already in progress")
            self._dispatch_paused = True
        try:
            with self._lock:
                while self._outstanding and self._broken is None:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return False
                    self._wakeup.wait(min(0.05, remaining))
                if self._broken is not None:
                    raise WorkerCrashError(
                        f"the worker pool is broken: {self._broken}"
                    ) from self._broken
            if swap:
                from .artifacts import update_monitor_artifact

                for name, source in dict(swap).items():
                    update_monitor_artifact(self.bundle, name, source)
            with self._generation.get_lock():
                self._generation.value += 1
                target = int(self._generation.value)
            _LOG.info("bumped lifecycle generation to %d", target)
            with self._lock:
                while self._broken is None:
                    pending = [
                        worker_id
                        for worker_id, process in self._workers.items()
                        if process.is_alive()
                        and self._reload_acks.get(worker_id, -1) < target
                    ]
                    if not pending:
                        return True
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        _LOG.warning(
                            "reload to generation %d timed out waiting for "
                            "worker(s) %s",
                            target,
                            pending,
                        )
                        return False
                    self._wakeup.wait(min(0.05, remaining))
                return False
        finally:
            with self._lock:
                self._dispatch_paused = False
                self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # chaos hook (tests): make the next dispatched batch kill its worker
    # ------------------------------------------------------------------
    def inject_worker_crash(self) -> None:
        """Arm a one-shot crash: the next dispatched batch's worker dies
        after claiming it (the exact window crash recovery must cover).
        Re-dispatched batches never carry the marker, so the batch is
        scored by a replacement and producers observe nothing."""
        with self._lock:
            self._pending_chaos = CHAOS_EXIT_AFTER_CLAIM

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while True:
                    if self._broken is not None:
                        return
                    if self._closed and (
                        not self._draining or len(self._batcher) == 0
                    ):
                        return
                    if self._dispatch_paused and not self._closed:
                        # A lifecycle promotion is in flight: frames keep
                        # queueing (FIFO), nothing dispatches until the
                        # workers acknowledge the new generation.
                        self._wakeup.wait(0.05)
                        continue
                    now = self._clock()
                    if len(self._batcher) and (self._closed or self._batcher.ready(now)):
                        break
                    deadline = self._batcher.deadline()
                    wait = None if deadline is None else max(0.0, deadline - now)
                    self._wakeup.wait(wait)
                reason = "drain" if self._closed else self._batcher.flush_reason(
                    self._clock()
                )
                batch = self._batcher.take()
            self._dispatch_batch(batch, reason)

    def _dispatch_batch(self, batch: List[FrameRequest], reason: str) -> None:
        requests = [
            request
            for request in batch
            if request.future.set_running_or_notify_cancel()
        ]
        cancelled = len(batch) - len(requests)
        if cancelled:
            self.stats.record_cancelled(cancelled)
        if not requests:
            return
        with self._lock:
            while not self._free_slots and self._broken is None:
                self._wakeup.wait(0.05)
            if self._broken is not None:
                failed = requests
            else:
                failed = None
                slot = self._free_slots.pop()
                task_id = self._next_task_id
                self._next_task_id += 1
                chaos = self._pending_chaos
                self._pending_chaos = None
                task = _Task(requests, slot, len(requests), reason, self._clock())
                self._outstanding[task_id] = task
        if failed is not None:
            exc = WorkerCrashError(f"the worker pool is broken: {self._broken}")
            for request in failed:
                if not request.future.done():
                    request.future.set_exception(exc)
            self.stats.record_batch(len(failed), reason, (), failed=True)
            return
        frames = np.vstack([request.frame for request in requests])
        self._ring.write(slot, frames)
        self._task_queue.put(("batch", task_id, slot, len(requests), chaos))

    # ------------------------------------------------------------------
    # collector / supervisor
    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=0.1)
            except queue_module.Empty:
                self._check_workers()
                if self._collector_stop.is_set():
                    with self._lock:
                        if not self._outstanding:
                            return
                continue
            kind = message[0]
            if kind == "ready":
                _, worker_id, pid, names, generation = message
                with self._lock:
                    # The boot generation is an implicit reload ack: a worker
                    # spawned after an artefact swap loaded the new files.
                    self._reload_acks[worker_id] = int(generation)
                    self._wakeup.notify_all()
                _LOG.info("worker %d ready (pid=%d, monitors=%s)", worker_id, pid, names)
            elif kind == "reloaded":
                _, worker_id, generation = message
                with self._lock:
                    self._reload_acks[worker_id] = max(
                        self._reload_acks.get(worker_id, 0), int(generation)
                    )
                    self._wakeup.notify_all()
                _LOG.info("worker %d reloaded (generation=%d)", worker_id, generation)
            elif kind == "claim":
                _, task_id, worker_id = message
                requeue = None
                with self._lock:
                    if task_id in self._outstanding:
                        process = self._workers.get(worker_id)
                        if process is not None and process.is_alive():
                            self._claims[task_id] = worker_id
                        else:
                            # The claimer died (and may already be reaped)
                            # before we read its claim: re-queue here, since
                            # the reap path can no longer see the claim.
                            task = self._outstanding[task_id]
                            requeue = ("batch", task_id, task.slot, task.nrows, None)
                if requeue is not None:
                    self._task_queue.put(requeue)
            elif kind == "done":
                _, task_id, worker_id, packed = message
                self._resolve_task(task_id, packed=packed)
            elif kind == "fail":
                _, task_id, worker_id, description = message
                self._resolve_task(task_id, error=RemoteScoringError(description))

    def _resolve_task(self, task_id, packed=None, error=None) -> None:
        with self._lock:
            task = self._outstanding.pop(task_id, None)
            self._claims.pop(task_id, None)
            if task is not None:
                self._free_slots.add(task.slot)
            self._wakeup.notify_all()
        if task is None:  # late duplicate after a re-queue race
            return
        if error is not None:
            for request in task.requests:
                if not request.future.done():
                    request.future.set_exception(error)
            self.stats.record_batch(len(task.requests), task.reason, (), failed=True)
            return
        warns = {
            name: np.frombuffer(raw, dtype=np.uint8).astype(bool)
            for name, raw in packed.items()
        }
        done = self._clock()
        latencies = []
        for row, request in enumerate(task.requests):
            result = FrameResult(
                warns={name: bool(flags[row]) for name, flags in warns.items()}
            )
            request.future.set_result(result)
            latencies.append(done - request.enqueued_at)
        self.stats.record_batch(len(task.requests), task.reason, latencies, failed=False)

    def _check_workers(self) -> None:
        """Reap dead workers: re-queue their claimed tasks, spawn spares."""
        dead: List[int] = []
        with self._lock:
            if self._stopping:
                return
            for worker_id, process in list(self._workers.items()):
                if not process.is_alive():
                    dead.append(worker_id)
            requeue: List[tuple] = []
            requeued_ids = set()
            for worker_id in dead:
                process = self._workers.pop(worker_id)
                process.join()
                lost = [
                    task_id
                    for task_id, claimer in self._claims.items()
                    if claimer == worker_id
                ]
                for task_id in lost:
                    del self._claims[task_id]
                    task = self._outstanding[task_id]
                    # The slot still holds the frames; re-dispatch the same
                    # coordinates with any chaos marker stripped.
                    requeue.append(("batch", task_id, task.slot, task.nrows, None))
                    requeued_ids.add(task_id)
                _LOG.warning(
                    "worker %d died (exitcode=%s); re-queued %d claimed batch(es)",
                    worker_id,
                    process.exitcode,
                    len(lost),
                )
            if dead:
                # A worker that dies between consuming a task and its claim
                # reaching us leaves the task outstanding but unclaimed — an
                # abrupt exit can drop the result queue's feeder buffer, so
                # the claim itself is not a delivery guarantee.  We cannot
                # tell which consumer died, so re-queue every unclaimed
                # outstanding task; if a live worker had it after all, the
                # duplicate is scored twice and the second "done" is ignored.
                unclaimed = [
                    (task_id, task)
                    for task_id, task in self._outstanding.items()
                    if task_id not in self._claims and task_id not in requeued_ids
                ]
                for task_id, task in unclaimed:
                    requeue.append(("batch", task_id, task.slot, task.nrows, None))
                if unclaimed:
                    _LOG.warning(
                        "re-queued %d unclaimed in-flight batch(es)", len(unclaimed)
                    )
            replacements = 0
            if dead and not self._closed:
                while (
                    len(self._workers) < self.num_workers_requested
                    and self._restarts < self.max_restarts
                ):
                    self._spawn_worker()
                    self._restarts += 1
                    replacements += 1
            if dead and not self._workers and replacements == 0:
                # Restart budget exhausted with nobody left to score.
                self._broken = WorkerCrashError(
                    f"all workers died and the restart budget ({self.max_restarts}) "
                    "is exhausted"
                )
                broken = self._broken
                doomed = list(self._outstanding.values())
                self._outstanding.clear()
                self._claims.clear()
                for task in doomed:
                    self._free_slots.add(task.slot)
                pending: List[FrameRequest] = []
                for batch in self._batcher.drain():
                    pending.extend(batch)
                self._wakeup.notify_all()
            else:
                broken = None
                doomed = []
                pending = []
        for item in requeue:
            self._task_queue.put(item)
        if replacements:
            _LOG.warning("spawned %d replacement worker(s)", replacements)
        if broken is not None:
            for task in doomed:
                for request in task.requests:
                    if not request.future.done():
                        request.future.set_exception(broken)
                self.stats.record_batch(len(task.requests), task.reason, (), failed=True)
            cancelled = sum(1 for request in pending if request.future.cancel())
            if cancelled:
                self.stats.record_cancelled(cancelled)
            _LOG.error("pool broken: %s", broken)
