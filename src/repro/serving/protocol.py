"""Length-prefixed binary wire protocol of the scoring service.

The out-of-process scorer speaks a deliberately small, stdlib-only protocol
over TCP.  Every message is one *frame*::

    magic(2) | version(1) | type(1) | request_id(8, BE) | payload_len(4, BE) | payload

``request_id`` is chosen by the requester and echoed verbatim in the
response, which is what makes request *pipelining* possible: a client may
have any number of SCORE requests in flight on one connection and match
responses by id, in whatever order the server finishes them.

Payloads are a 4-byte big-endian JSON-header length, the UTF-8 JSON header,
then raw array bytes — numpy arrays travel as their C-contiguous buffer
next to a ``dtype``/``shape`` description, so a score request never pays
pickling or base64 overhead.  Everything in this module is pure
bytes-in/bytes-out (no sockets), which keeps the codec property-testable:
``tests/serving/test_protocol.py`` round-trips random frame batches through
:class:`FrameDecoder` under arbitrary chunk boundaries.

Error responses are *typed*: the payload carries a stable ``code`` that
:func:`error_to_exception` maps back onto the library's exception hierarchy,
so a client sees the same exception class it would have seen calling the
in-process scorer directly.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..exceptions import (
    LifecycleStateError,
    ProtocolError,
    RemoteScoringError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShapeError,
    WorkerCrashError,
)

__all__ = [
    "DEFAULT_MAX_PAYLOAD",
    "PROTOCOL_VERSION",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "decode_error",
    "decode_json",
    "decode_result",
    "decode_score_request",
    "encode_error",
    "encode_frame",
    "encode_json",
    "encode_result",
    "encode_score_request",
    "error_to_exception",
    "exception_to_code",
]

MAGIC = b"RS"
PROTOCOL_VERSION = 1

#: Default bound on a single frame's payload (requests *and* responses).
#: 64 MiB holds a ~1000-frame micro-burst of 8k-feature float64 rows; a
#: length prefix above the bound is rejected before any allocation, so a
#: garbled or malicious prefix cannot make the server reserve gigabytes.
DEFAULT_MAX_PAYLOAD = 64 * 1024 * 1024

_HEADER = struct.Struct(">2sBBQI")
HEADER_SIZE = _HEADER.size
_JSON_LEN = struct.Struct(">I")


class FrameType(IntEnum):
    """Wire frame types (requests < 128, responses >= 128)."""

    SCORE = 1
    PING = 2
    STATS = 3
    LIFECYCLE_STATUS = 4
    PROMOTE = 5
    ROLLBACK = 6
    SHADOW_REPORT = 7
    RESULT = 129
    ERROR = 130
    PONG = 131
    STATS_REPLY = 132
    LIFECYCLE_REPLY = 133


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    type: FrameType
    request_id: int
    payload: bytes = b""

    @property
    def is_response(self) -> bool:
        return int(self.type) >= 128


def encode_frame(frame_type: FrameType, request_id: int, payload: bytes = b"") -> bytes:
    """Serialise one frame to wire bytes."""
    if not 0 <= request_id < 2**64:
        raise ProtocolError(f"request_id {request_id} outside the unsigned 64-bit range")
    return (
        _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(frame_type), request_id, len(payload))
        + payload
    )


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    ``feed`` accepts whatever the transport produced — half a header, three
    frames and a tail, one byte — buffers the remainder, and returns every
    frame completed so far.  Framing violations (bad magic, unknown version,
    unknown type, payload above ``max_payload``) raise
    :class:`~repro.exceptions.ProtocolError`; after that the stream has no
    recoverable frame boundary and the connection must be closed.
    """

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD) -> None:
        self.max_payload = int(max_payload)
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes received but not yet assembled into a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data`` and return every frame it completed."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return frames
            magic, version, ftype, request_id, length = _HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise ProtocolError(
                    f"bad frame magic {magic!r} (not a scoring-protocol stream?)"
                )
            if version != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version} "
                    f"(this peer speaks {PROTOCOL_VERSION})"
                )
            try:
                frame_type = FrameType(ftype)
            except ValueError as exc:
                raise ProtocolError(f"unknown frame type {ftype}") from exc
            if length > self.max_payload:
                raise ProtocolError(
                    f"frame payload of {length} bytes exceeds the "
                    f"{self.max_payload}-byte bound"
                )
            if len(self._buffer) < HEADER_SIZE + length:
                return frames
            payload = bytes(self._buffer[HEADER_SIZE : HEADER_SIZE + length])
            del self._buffer[: HEADER_SIZE + length]
            frames.append(Frame(type=frame_type, request_id=request_id, payload=payload))


# ----------------------------------------------------------------------
# payload codecs: JSON header + raw array bytes
# ----------------------------------------------------------------------
def _pack_payload(header: Mapping[str, object], *buffers: bytes) -> bytes:
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join((_JSON_LEN.pack(len(header_bytes)), header_bytes) + buffers)


def _unpack_payload(payload: bytes) -> Tuple[dict, bytes]:
    if len(payload) < _JSON_LEN.size:
        raise ProtocolError("payload truncated before its JSON header length")
    (header_len,) = _JSON_LEN.unpack_from(payload)
    body_start = _JSON_LEN.size + header_len
    if len(payload) < body_start:
        raise ProtocolError("payload truncated inside its JSON header")
    try:
        header = json.loads(payload[_JSON_LEN.size : body_start].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed payload JSON header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("payload JSON header must be an object")
    return header, payload[body_start:]


def encode_score_request(frames: np.ndarray) -> bytes:
    """Payload of a SCORE request: an ``(N, d)`` float64 frame batch."""
    frames = np.ascontiguousarray(np.atleast_2d(np.asarray(frames, dtype=np.float64)))
    if frames.ndim != 2:
        raise ShapeError(f"expected an (N, d) frame batch, got shape {frames.shape}")
    header = {"dtype": "<f8", "shape": list(frames.shape)}
    return _pack_payload(header, frames.astype("<f8", copy=False).tobytes())


def decode_score_request(payload: bytes) -> np.ndarray:
    """Frame batch of a SCORE request payload (always owns its memory)."""
    header, body = _unpack_payload(payload)
    if header.get("dtype") != "<f8":
        raise ProtocolError(f"unsupported frame dtype {header.get('dtype')!r}")
    shape = header.get("shape")
    if (
        not isinstance(shape, list)
        or len(shape) != 2
        or not all(isinstance(dim, int) and dim >= 0 for dim in shape)
    ):
        raise ProtocolError(f"malformed frame shape {shape!r}")
    expected = shape[0] * shape[1] * 8
    if len(body) != expected:
        raise ProtocolError(
            f"frame body carries {len(body)} bytes, shape {tuple(shape)} needs {expected}"
        )
    return np.frombuffer(body, dtype="<f8").reshape(shape).copy()


def encode_result(warns: Mapping[str, np.ndarray]) -> bytes:
    """Payload of a RESULT response: one boolean warn vector per monitor."""
    names = list(warns)
    buffers = []
    count = None
    for name in names:
        flags = np.ascontiguousarray(np.asarray(warns[name], dtype=bool))
        if flags.ndim != 1:
            raise ShapeError(f"warn vector of '{name}' must be 1-D, got {flags.shape}")
        if count is None:
            count = flags.shape[0]
        elif flags.shape[0] != count:
            raise ShapeError("all warn vectors of one result must have equal length")
        buffers.append(flags.astype(np.uint8, copy=False).tobytes())
    header = {"monitors": names, "count": 0 if count is None else int(count)}
    return _pack_payload(header, *buffers)


def decode_result(payload: bytes) -> Dict[str, np.ndarray]:
    """Per-monitor boolean warn vectors of a RESULT payload."""
    header, body = _unpack_payload(payload)
    names = header.get("monitors")
    count = header.get("count")
    if not isinstance(names, list) or not all(isinstance(name, str) for name in names):
        raise ProtocolError(f"malformed monitor name list {names!r}")
    if not isinstance(count, int) or count < 0:
        raise ProtocolError(f"malformed result count {count!r}")
    if len(body) != count * len(names):
        raise ProtocolError(
            f"result body carries {len(body)} bytes, "
            f"{len(names)} monitors x {count} frames need {count * len(names)}"
        )
    out: Dict[str, np.ndarray] = {}
    for index, name in enumerate(names):
        flags = np.frombuffer(body, dtype=np.uint8, count=count, offset=index * count)
        out[name] = flags.astype(bool)
    return out


# ----------------------------------------------------------------------
# typed error frames
# ----------------------------------------------------------------------
#: Stable wire codes <-> local exception classes.  The mapping is the
#: contract that lets a remote client raise the *same* exception class the
#: in-process scorer would have raised.
_CODE_TO_EXCEPTION = {
    "overloaded": ServiceOverloadedError,
    "closed": ServiceClosedError,
    "shape": ShapeError,
    "protocol": ProtocolError,
    "worker_crash": WorkerCrashError,
    "lifecycle": LifecycleStateError,
    "internal": RemoteScoringError,
}


def exception_to_code(exc: BaseException) -> str:
    """Wire code of ``exc`` (most specific class wins; unknown → internal)."""
    for code, cls in _CODE_TO_EXCEPTION.items():
        if type(exc) is cls:
            return code
    for code, cls in _CODE_TO_EXCEPTION.items():
        if isinstance(exc, cls):
            return code
    return "internal"


def encode_error(code: str, message: str) -> bytes:
    return _pack_payload({"code": str(code), "message": str(message)})


def decode_error(payload: bytes) -> Tuple[str, str]:
    header, _ = _unpack_payload(payload)
    return str(header.get("code", "internal")), str(header.get("message", ""))


def error_to_exception(code: str, message: str) -> Exception:
    """Local exception instance for a typed error frame."""
    return _CODE_TO_EXCEPTION.get(code, RemoteScoringError)(message)


def encode_json(data: Mapping[str, object]) -> bytes:
    """Payload of a STATS reply (or any small JSON-shaped message)."""
    return _pack_payload(dict(data))


def decode_json(payload: bytes) -> dict:
    header, _ = _unpack_payload(payload)
    return header
