"""TCP front-end: the scoring service's network face.

:class:`ScoringServer` puts the length-prefixed protocol of
:mod:`repro.serving.protocol` in front of any scorer exposing the streaming
submit surface (``submit_many`` → futures) — an in-process
:class:`~repro.service.StreamingScorer` or an out-of-process
:class:`~repro.serving.pool.WorkerPool`.  Built on
:class:`socketserver.ThreadingTCPServer`: one daemon thread per connection
reads frames incrementally, SCORE requests go straight into the scorer, and
each response is written when its futures resolve — requests *pipeline*,
so a client keeps many scores in flight per connection and responses return
in completion order, matched by ``request_id``.

Scorer-side failures travel as typed error frames, so remote callers see
the same exception classes in-process callers do (overload, closed, shape);
framing violations (bad magic, oversized payload) get one final typed
error, then the connection closes — after a framing error the byte stream
has no recoverable frame boundary.
"""

from __future__ import annotations

import logging
import socketserver
import threading
from typing import Callable, Optional, Tuple

from ..exceptions import LifecycleStateError, ProtocolError, ReproError
from . import protocol

__all__ = ["ScoringServer"]

_LOG = logging.getLogger("repro.serving.server")


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True  # restart on the same port without TIME_WAIT pain
    # Modest backlog; the scorer's max_pending is the real admission control.
    request_queue_size = 16


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One client connection: decode → dispatch → write responses."""

    def setup(self) -> None:
        self.owner: "ScoringServer" = self.server.owner  # type: ignore[attr-defined]
        self.decoder = protocol.FrameDecoder(max_payload=self.owner.max_payload)
        # Responses are written from whatever thread resolves the last
        # future of a request; one lock per connection keeps frames whole.
        self.write_lock = threading.Lock()
        self.alive = True

    def _send(self, frame_type: protocol.FrameType, request_id: int, payload: bytes) -> None:
        data = protocol.encode_frame(frame_type, request_id, payload)
        try:
            with self.write_lock:
                if self.alive:
                    self.request.sendall(data)
        except OSError:
            self.alive = False

    def _send_error(self, request_id: int, exc: BaseException) -> None:
        self._send(
            protocol.FrameType.ERROR,
            request_id,
            protocol.encode_error(protocol.exception_to_code(exc), str(exc)),
        )

    def handle(self) -> None:
        peer = self.client_address
        _LOG.info("connection from %s:%s", *peer)
        self.request.settimeout(None)
        while self.alive and not self.owner.closing:
            try:
                chunk = self.request.recv(65536)
            except OSError:
                break
            if not chunk:
                break
            try:
                frames = self.decoder.feed(chunk)
            except ProtocolError as exc:
                _LOG.warning("protocol error from %s:%s: %s", peer[0], peer[1], exc)
                self._send_error(0, exc)
                break
            for frame in frames:
                self._dispatch(frame)
        self.alive = False
        _LOG.info("connection from %s:%s closed", *peer)

    # ------------------------------------------------------------------
    _LIFECYCLE_TYPES = (
        protocol.FrameType.LIFECYCLE_STATUS,
        protocol.FrameType.PROMOTE,
        protocol.FrameType.ROLLBACK,
        protocol.FrameType.SHADOW_REPORT,
    )

    def _dispatch(self, frame: protocol.Frame) -> None:
        if frame.type == protocol.FrameType.PING:
            self._send(protocol.FrameType.PONG, frame.request_id, frame.payload)
        elif frame.type == protocol.FrameType.STATS:
            self._send(
                protocol.FrameType.STATS_REPLY,
                frame.request_id,
                protocol.encode_json(self.owner.stats_snapshot()),
            )
        elif frame.type == protocol.FrameType.SCORE:
            self._handle_score(frame)
        elif frame.type in self._LIFECYCLE_TYPES:
            self._handle_lifecycle(frame)
        else:
            self._send_error(
                frame.request_id,
                ProtocolError(f"frame type {frame.type.name} is not a request"),
            )

    def _handle_lifecycle(self, frame: protocol.Frame) -> None:
        """Lifecycle control frames, answered with one LIFECYCLE_REPLY.

        The handlers run on the connection thread: promotion quiesces the
        scorer (or drains a worker pool), which must not block the scoring
        path — and does not, since scoring responses are written by future
        done-callbacks, not by this thread.
        """
        manager = self.owner.lifecycle
        try:
            if manager is None:
                raise LifecycleStateError(
                    "this server has no lifecycle manager attached; start it "
                    "with ScoringServer(lifecycle=...) or "
                    "MonitorPipeline.serve(lifecycle=True)"
                )
            request = (
                protocol.decode_json(frame.payload) if frame.payload else {}
            )
            if frame.type == protocol.FrameType.LIFECYCLE_STATUS:
                reply = manager.status()
            elif frame.type == protocol.FrameType.SHADOW_REPORT:
                reply = {"shadows": manager.shadow_report(request.get("name"))}
            elif frame.type == protocol.FrameType.PROMOTE:
                name = self._request_name(request)
                version = manager.promote(
                    name,
                    guard=bool(request.get("guard", True)),
                    watch_budget=request.get("watch_budget"),
                )
                reply = {"name": name, "version": version}
            else:  # ROLLBACK
                name = self._request_name(request)
                version = manager.rollback(name, request.get("version"))
                reply = {"name": name, "version": version}
        except ReproError as exc:
            self._send_error(frame.request_id, exc)
            return
        self._send(
            protocol.FrameType.LIFECYCLE_REPLY,
            frame.request_id,
            protocol.encode_json(reply),
        )

    @staticmethod
    def _request_name(request: dict) -> str:
        name = request.get("name")
        if not isinstance(name, str) or not name:
            raise ProtocolError(
                "lifecycle request payload must carry a monitor 'name'"
            )
        return name

    def _handle_score(self, frame: protocol.Frame) -> None:
        request_id = frame.request_id
        try:
            inputs = protocol.decode_score_request(frame.payload)
            futures = self.owner.scorer.submit_many(inputs)
        except ReproError as exc:
            self._send_error(request_id, exc)
            return
        self.owner.count_request(len(futures))
        if not futures:
            self._send(
                protocol.FrameType.RESULT, request_id, protocol.encode_result({})
            )
            return
        # Pipelining without extra threads: the done-callback of the last
        # future to resolve assembles and writes the response.
        remaining = [len(futures)]
        counter_lock = threading.Lock()

        def finish() -> None:
            try:
                results = [future.result() for future in futures]
            except BaseException as exc:
                self._send_error(request_id, exc)
                return
            names = results[0].warns.keys()
            warns = {
                name: [result.warns[name] for result in results] for name in names
            }
            self._send(
                protocol.FrameType.RESULT, request_id, protocol.encode_result(warns)
            )

        def on_done(_future) -> None:
            with counter_lock:
                remaining[0] -= 1
                last = remaining[0] == 0
            if last:
                finish()

        for future in futures:
            future.add_done_callback(on_done)


class ScoringServer:
    """Socket front-end over a streaming scorer or worker pool.

    Parameters
    ----------
    scorer:
        Any object with the streaming submit surface (``submit_many`` →
        per-frame futures, ``stats.snapshot()``, ``close(drain=...)``).
    host / port:
        Bind address; port ``0`` picks a free ephemeral port (read it back
        from :attr:`address`).
    max_payload:
        Per-frame payload bound; oversized requests are rejected with a
        typed error before any allocation.
    owns_scorer:
        When True, :meth:`close` also closes the scorer (used by
        ``MonitorPipeline.serve(remote=True)``, where the server is the
        deployment's single handle).
    log_path:
        Optional file that receives the server's log records (connection
        lifecycle, protocol errors, worker restarts via the pool logger) —
        CI uploads it as an artifact when the end-to-end leg fails.
    cleanup:
        Optional callable invoked once after :meth:`close` (e.g. to remove
        a temporary artefact directory).
    lifecycle:
        Optional :class:`~repro.lifecycle.manager.LifecycleManager` over
        ``scorer``; attaching one enables the lifecycle control frames
        (LIFECYCLE_STATUS / PROMOTE / ROLLBACK / SHADOW_REPORT), so remote
        operators drive promotions over the same connection that scores.
    """

    def __init__(
        self,
        scorer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_payload: int = protocol.DEFAULT_MAX_PAYLOAD,
        owns_scorer: bool = False,
        log_path: Optional[str] = None,
        cleanup: Optional[Callable[[], None]] = None,
        lifecycle=None,
    ) -> None:
        self.scorer = scorer
        self.lifecycle = lifecycle
        self.max_payload = int(max_payload)
        self.owns_scorer = bool(owns_scorer)
        self.closing = False
        self._cleanup = cleanup
        self._served_frames = 0
        self._served_requests = 0
        self._count_lock = threading.Lock()
        self._log_handler: Optional[logging.Handler] = None
        if log_path is not None:
            handler = logging.FileHandler(log_path)
            handler.setFormatter(
                logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
            )
            serving_logger = logging.getLogger("repro.serving")
            serving_logger.addHandler(handler)
            serving_logger.setLevel(logging.INFO)
            self._log_handler = handler
        self._tcp = _ThreadedTCPServer((host, port), _ConnectionHandler)
        self._tcp.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — connect a ScoringClient here."""
        return self._tcp.server_address[:2]

    def count_request(self, num_frames: int) -> None:
        with self._count_lock:
            self._served_requests += 1
            self._served_frames += num_frames

    def stats_snapshot(self) -> dict:
        """Scorer stats plus server/pool identity, as one JSON-able dict."""
        snapshot = dict(self.scorer.stats.snapshot())
        snapshot["server_requests"] = self._served_requests
        snapshot["server_frames"] = self._served_frames
        describe = getattr(self.scorer, "describe", None)
        if callable(describe):
            snapshot["scorer"] = describe()
        if self.lifecycle is not None:
            snapshot["lifecycle"] = self.lifecycle.status()
        return snapshot

    # ------------------------------------------------------------------
    def start(self) -> "ScoringServer":
        """Start accepting connections (idempotent while running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-scoring-server",
            daemon=True,
        )
        self._thread.start()
        _LOG.info("serving on %s:%d", *self.address)
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the listener, then (if owned) close the backing scorer."""
        if self.closing:
            return
        self.closing = True
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout)
        if self.owns_scorer:
            self.scorer.close(drain=drain, timeout=timeout)
        if self._log_handler is not None:
            logging.getLogger("repro.serving").removeHandler(self._log_handler)
            self._log_handler.close()
            self._log_handler = None
        if self._cleanup is not None:
            cleanup, self._cleanup = self._cleanup, None
            cleanup()
        _LOG.info("server on %s:%d closed", *self.address)

    def __enter__(self) -> "ScoringServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)
