"""repro — Provably-Robust Runtime Monitoring of Neuron Activation Patterns.

A self-contained reproduction of Cheng, "Provably-Robust Runtime Monitoring
of Neuron Activation Patterns" (DATE 2021).  The library provides:

* :mod:`repro.nn` — a numpy feed-forward DNN substrate (training, layer-sliced
  evaluation ``G^k`` / ``G^{l↪k}``, interval bound propagation);
* :mod:`repro.symbolic` — sound abstract domains (box, zonotope, star set)
  used for the perturbation estimate of Definition 1;
* :mod:`repro.bdd` — a reduced ordered BDD manager and the pattern-set
  wrapper implementing ``word2set``;
* :mod:`repro.runtime` — the vectorised bit-packed pattern substrate: codec
  (batched binarisation, ternary bit-planes), TCAM-style membership matcher
  and the batched scoring engine with its per-layer activation cache;
* :mod:`repro.monitors` — the paper's contribution: min-max, Boolean on/off
  and multi-bit interval activation monitors, each with a standard and a
  provably-robust variant;
* :mod:`repro.data` — synthetic digits, race-track/waypoint imagery and
  out-of-ODD scenario transforms replacing the paper's lab setup;
* :mod:`repro.eval` — false-positive / detection-rate metrics, experiment
  runners and parameter sweeps;
* :mod:`repro.service` — the streaming scoring service: frames submitted
  one at a time are coalesced into micro-batches and scored through one
  shared engine pass across every registered monitor;
* :mod:`repro.serving` — the out-of-process face of that service: a
  length-prefixed TCP protocol, deployment bundles, a multi-process worker
  pool fed through shared memory, and the socket server/client pair;
* :mod:`repro.lifecycle` — the online monitor lifecycle: a versioned
  artefact store, shadow scoring of candidate monitors on live traffic,
  atomic promotion/rollback and incremental refit from streamed frames;
* :mod:`repro.core` — end-to-end pipelines and reference workloads.

Quickstart
----------
>>> from repro import build_track_workload, MonitorPipeline, PerturbationSpec
>>> workload = build_track_workload(num_samples=200, epochs=5, seed=0)
>>> pipeline = MonitorPipeline(
...     workload, family="minmax",
...     perturbation=PerturbationSpec(delta=0.05, layer=0, method="box"))
>>> result = pipeline.run()
>>> result.score("robust").false_positive_rate <= result.score("standard").false_positive_rate
True
"""

from .core import (
    DEFAULT_PERTURBATION,
    MonitoringWorkload,
    MonitorPipeline,
    build_digits_workload,
    build_track_workload,
    default_monitored_layer,
)
from .exceptions import (
    ConfigurationError,
    DataError,
    LayerIndexError,
    LifecycleStateError,
    NotFittedError,
    PropagationError,
    ProtocolError,
    RemoteScoringError,
    ReproError,
    SerializationError,
    ShapeError,
    WorkerCrashError,
)
from .lifecycle import LifecycleManager, MonitorStore
from .monitors import (
    BooleanPatternMonitor,
    ClassConditionalMonitor,
    IntervalPatternMonitor,
    MinMaxMonitor,
    MonitorBuilder,
    MonitorEnsemble,
    MonitorVerdict,
    PerturbationSpec,
    RobustBooleanPatternMonitor,
    RobustIntervalPatternMonitor,
    RobustMinMaxMonitor,
)
from .nn import Sequential, mlp
from .runtime import BatchScoringEngine, PatternCodec
from .service import BatchPolicy, StreamingScorer
from .symbolic import Box, StarSet, Zonotope, perturbation_bounds, propagate_bounds

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "LayerIndexError",
    "NotFittedError",
    "PropagationError",
    "SerializationError",
    "DataError",
    "ProtocolError",
    "RemoteScoringError",
    "WorkerCrashError",
    "LifecycleStateError",
    # networks
    "Sequential",
    "mlp",
    # symbolic
    "Box",
    "Zonotope",
    "StarSet",
    "propagate_bounds",
    "perturbation_bounds",
    # monitors
    "MonitorVerdict",
    "MinMaxMonitor",
    "RobustMinMaxMonitor",
    "BooleanPatternMonitor",
    "RobustBooleanPatternMonitor",
    "IntervalPatternMonitor",
    "RobustIntervalPatternMonitor",
    "MonitorBuilder",
    "ClassConditionalMonitor",
    "MonitorEnsemble",
    "PerturbationSpec",
    # runtime
    "PatternCodec",
    "BatchScoringEngine",
    # service
    "BatchPolicy",
    "StreamingScorer",
    # lifecycle
    "LifecycleManager",
    "MonitorStore",
    # pipelines
    "DEFAULT_PERTURBATION",
    "MonitoringWorkload",
    "MonitorPipeline",
    "build_track_workload",
    "build_digits_workload",
    "default_monitored_layer",
]
