"""Streaming scoring service: a micro-batching front-end over the engine.

The offline harness scores pre-assembled batches; a deployment receives
frames one at a time.  This package bridges the two with a classic
micro-batching service: producers submit frames and get futures, a worker
thread coalesces frames under a size/latency policy, and each micro-batch
runs through one shared :class:`~repro.runtime.engine.BatchScoringEngine`
pass covering every registered monitor.
"""

from .streaming import (
    BatchPolicy,
    FrameRequest,
    FrameResult,
    MicroBatcher,
    ServiceStats,
    StreamingScorer,
)

__all__ = [
    "BatchPolicy",
    "FrameRequest",
    "FrameResult",
    "MicroBatcher",
    "ServiceStats",
    "StreamingScorer",
]
