"""Streaming micro-batch scoring over a shared :class:`BatchScoringEngine`.

The paper's monitors are meant to run *online*, next to the deployed
network, flagging abnormal activation patterns frame by frame.  Scoring each
frame the moment it arrives wastes the batched substrate: a one-row forward
pass costs almost as much as a 64-row one, so at any realistic frame rate
the hardware sits idle between frames.  :class:`StreamingScorer` closes that
gap with classic micro-batching:

1. producers hand in single frames (:meth:`StreamingScorer.submit`) or small
   bursts (:meth:`StreamingScorer.submit_many`) and immediately receive a
   :class:`concurrent.futures.Future` per frame;
2. a worker thread coalesces queued frames under a
   :class:`BatchPolicy` — flush as soon as ``max_batch`` frames are pending,
   or when the *oldest* pending frame has waited ``max_latency`` seconds;
3. each coalesced batch runs through one shared
   :class:`~repro.runtime.engine.BatchScoringEngine` pass covering every
   registered monitor, and the per-frame futures resolve with
   :class:`FrameResult` verdicts.

Because a batch is scored by the same ``score_batch`` call the offline
harness uses — and the engine feeds every monitor the same vectorised layer
walk as a direct ``warn_batch`` — streaming verdicts are identical to
offline batch scoring for any interleaving of submissions (pinned by the
equivalence and hypothesis tests in ``tests/service/``).

The scorer hosts its monitors in a
:class:`~repro.monitors.registry.MonitorRegistry`, so several families
(standard + robust, ensembles, class-conditional dispatchers) serve side by
side over one network, and members can be added or retired mid-stream.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShapeError,
)
from ..monitors.base import MonitorVerdict
from ..monitors.registry import MonitorRegistry
from ..nn.network import Sequential
from ..runtime.engine import BatchScoringEngine

__all__ = [
    "BatchPolicy",
    "FrameRequest",
    "FrameResult",
    "MicroBatcher",
    "ServiceStats",
    "StreamingScorer",
]


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy of the streaming scorer.

    Parameters
    ----------
    max_batch:
        Flush as soon as this many frames are pending (the throughput knob).
    max_latency:
        Flush at the latest this many seconds after the *oldest* pending
        frame arrived (the tail-latency knob).  ``0`` degenerates to
        frame-at-a-time scoring whenever the producer is slower than the
        worker.
    max_pending:
        Optional bound on queued frames; :meth:`StreamingScorer.submit`
        raises :class:`~repro.exceptions.ServiceOverloadedError` instead of
        queueing past it.  ``None`` leaves the queue unbounded.
    """

    max_batch: int = 32
    max_latency: float = 0.005
    max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be at least 1")
        if self.max_latency < 0:
            raise ConfigurationError("max_latency must be non-negative")
        if self.max_pending is not None and self.max_pending < self.max_batch:
            raise ConfigurationError(
                "max_pending must be at least max_batch (one full flush)"
            )


@dataclass
class FrameResult:
    """Verdict of one streamed frame across every registered monitor."""

    warns: Dict[str, bool]
    verdicts: Optional[Dict[str, MonitorVerdict]] = None

    @property
    def any_warn(self) -> bool:
        """True when at least one registered monitor warned on the frame."""
        return any(self.warns.values())


@dataclass
class FrameRequest:
    """One queued frame: payload, enqueue time and the future to resolve."""

    frame: np.ndarray
    enqueued_at: float
    future: Future = field(default_factory=Future)


class MicroBatcher:
    """Pure coalescing core of the streaming scorer (no threads, no clock).

    Holds the pending frame queue and answers the two policy questions the
    worker loop needs — *when is a batch due* (:meth:`deadline`,
    :meth:`ready`) and *what does it contain* (:meth:`take`) — against an
    explicit ``now`` timestamp.  Keeping this logic free of threading and of
    ``time.monotonic()`` makes the flush-on-size / flush-on-deadline /
    drain-on-shutdown behaviour deterministically unit-testable; the
    :class:`StreamingScorer` drives it under a lock with the real clock.
    """

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._pending: "deque[FrameRequest]" = deque()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        """True when enough frames are pending for a size-triggered flush."""
        return len(self._pending) >= self.policy.max_batch

    def would_overflow(self, count: int) -> bool:
        """True when enqueueing ``count`` more frames would exceed ``max_pending``."""
        return (
            self.policy.max_pending is not None
            and len(self._pending) + count > self.policy.max_pending
        )

    @property
    def saturated(self) -> bool:
        """True when the ``max_pending`` backpressure bound is reached."""
        return self.would_overflow(1)

    def append(self, request: FrameRequest) -> None:
        self._pending.append(request)

    def deadline(self) -> Optional[float]:
        """Absolute time the oldest pending frame must be flushed by."""
        if not self._pending:
            return None
        return self._pending[0].enqueued_at + self.policy.max_latency

    def ready(self, now: float) -> bool:
        """True when a batch should flush at time ``now``."""
        if not self._pending:
            return False
        return self.full or now >= self.deadline()

    def take(self) -> List[FrameRequest]:
        """Pop the next batch (up to ``max_batch`` oldest frames)."""
        batch = []
        while self._pending and len(batch) < self.policy.max_batch:
            batch.append(self._pending.popleft())
        return batch

    def drain(self) -> List[List[FrameRequest]]:
        """Pop everything pending as a list of ``max_batch``-sized batches."""
        batches = []
        while self._pending:
            batches.append(self.take())
        return batches


class ServiceStats:
    """Running counters of a streaming scorer (thread-safe snapshots).

    Latencies are measured submit → future-resolved and kept in a bounded
    window so a long-lived service reports *recent* percentiles instead of
    averaging over its whole uptime.
    """

    def __init__(self, latency_window: int = 4096, event_window: int = 256) -> None:
        self._lock = threading.Lock()
        self.frames_submitted = 0
        self.frames_scored = 0
        self.frames_failed = 0
        self.frames_cancelled = 0
        self.batches = 0
        self.flush_reasons = {"size": 0, "adaptive": 0, "deadline": 0, "drain": 0}
        self.max_batch_size = 0
        self._latencies: "deque[float]" = deque(maxlen=int(latency_window))
        # Registry-churn ledger: timestamped register/unregister/promote/...
        # events, bounded so a long-lived service keeps *recent* history.
        self._events: "deque[Dict[str, object]]" = deque(maxlen=int(event_window))
        self.event_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def record_submitted(self, count: int) -> None:
        with self._lock:
            self.frames_submitted += count

    def record_batch(
        self, size: int, reason: str, latencies: Sequence[float], failed: bool
    ) -> None:
        with self._lock:
            self.batches += 1
            # Total over *any* reason string: a KeyError here would abort the
            # critical section half-applied (batches bumped, reason/latency
            # state not) and kill the recording scorer thread — front-ends
            # introduce new flush reasons (e.g. the pool's "adaptive") and the
            # ledger must absorb them, not crash on them.
            self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
            self.max_batch_size = max(self.max_batch_size, size)
            if failed:
                self.frames_failed += size
            else:
                self.frames_scored += size
                self._latencies.extend(latencies)

    def record_cancelled(self, count: int) -> None:
        with self._lock:
            self.frames_cancelled += count

    def record_event(self, kind: str, name: str, **detail: object) -> None:
        """Record one registry-churn event (register/unregister/promote/…).

        Events are timestamped with wall-clock time (they are audit trail,
        not latency data) and kept in a bounded ledger, so a promotion is
        visible in stats snapshots and ``format_service_report`` next to
        the flush-reason table without unbounded growth.
        """
        event: Dict[str, object] = {
            "time": time.time(),
            "kind": str(kind),
            "name": str(name),
        }
        if detail:
            event.update(detail)
        with self._lock:
            self._events.append(event)
            self.event_counts[kind] = self.event_counts.get(kind, 0) + 1

    def in_flight(self) -> int:
        """Frames submitted but not yet scored, failed or cancelled."""
        with self._lock:
            return self.frames_submitted - (
                self.frames_scored + self.frames_failed + self.frames_cancelled
            )

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Consistent copy of all counters plus derived latency statistics."""
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            scored = self.frames_scored
            batches = self.batches
            summary: Dict[str, object] = {
                "frames_submitted": self.frames_submitted,
                "frames_scored": scored,
                "frames_failed": self.frames_failed,
                "frames_cancelled": self.frames_cancelled,
                "batches": batches,
                "flush_reasons": dict(self.flush_reasons),
                "max_batch_size": self.max_batch_size,
                "mean_batch_size": (
                    (scored + self.frames_failed) / batches if batches else 0.0
                ),
                "event_counts": dict(self.event_counts),
                "events": [dict(event) for event in self._events],
            }
        if latencies.size:
            summary["latency_mean_s"] = float(latencies.mean())
            summary["latency_p50_s"] = float(np.percentile(latencies, 50))
            summary["latency_p95_s"] = float(np.percentile(latencies, 95))
            summary["latency_max_s"] = float(latencies.max())
        return summary


class StreamingScorer:
    """Micro-batching front-end serving many monitors over one network.

    Parameters
    ----------
    network:
        The host network every engine-path monitor is built on.
    policy:
        The :class:`BatchPolicy`; ``None`` uses the defaults.
    engine:
        Optional pre-built :class:`BatchScoringEngine` to share caches with
        other consumers; must wrap ``network``.  ``None`` builds a private
        one.
    want_verdicts:
        When True, resolved :class:`FrameResult` objects carry the full
        per-monitor :class:`MonitorVerdict` diagnostics, not just flags.
    cache_batches:
        When True, scored micro-batches enter the engine's activation
        cache.  The default False skips the cache for the worker's scoring
        pass (identical results, same layer walk): every micro-batch is
        fresh content, so content-hashing it for deduplication costs more
        than the forward passes it could ever save.  Enable only when the
        stream is known to repeat identical batches.
    clock:
        Monotonic time source (injectable for tests).

    The scorer is a context manager: ``with StreamingScorer(...) as scorer``
    starts the worker on entry and drains + joins it on exit.  Submissions
    are thread-safe; any number of producer threads may interleave
    :meth:`submit` / :meth:`submit_many` calls.
    """

    def __init__(
        self,
        network: Sequential,
        policy: Optional[BatchPolicy] = None,
        engine: Optional[BatchScoringEngine] = None,
        want_verdicts: bool = False,
        cache_batches: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else BatchPolicy()
        if engine is not None and engine.network is not network:
            raise ConfigurationError(
                "the streaming scorer's engine must wrap its host network"
            )
        self.engine = engine if engine is not None else BatchScoringEngine(network)
        self.registry = MonitorRegistry(network)
        self.want_verdicts = bool(want_verdicts)
        self.cache_batches = bool(cache_batches)
        self.stats = ServiceStats()
        #: Optional :class:`~repro.lifecycle.manager.LifecycleManager` over
        #: this scorer; :meth:`MonitorPipeline.serve(lifecycle=True)
        #: <repro.core.pipeline.MonitorPipeline.serve>` attaches one.
        self.lifecycle = None
        self._clock = clock
        self._batcher = MicroBatcher(self.policy)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._draining = False
        self._worker: Optional[threading.Thread] = None
        self._frame_dim: Optional[int] = None

    # ------------------------------------------------------------------
    # registration (delegates to the registry)
    # ------------------------------------------------------------------
    @property
    def network(self) -> Sequential:
        return self.engine.network

    def register(
        self,
        name: str,
        monitor,
        allow_foreign: bool = False,
        version: Optional[int] = None,
    ) -> None:
        """Register a fitted monitor to be scored on every streamed frame."""
        self.registry.register(
            name, monitor, allow_foreign=allow_foreign, version=version
        )
        self.stats.record_event("register", name, version=version)

    def unregister(self, name: str):
        """Retire a monitor; in-flight batches still include it."""
        monitor = self.registry.unregister(name)
        self.stats.record_event("unregister", name)
        return monitor

    def replace(self, name: str, monitor, version: Optional[int] = None):
        """Atomically swap the monitor served under ``name``.

        Delegates to :meth:`MonitorRegistry.replace`: every micro-batch
        scores entirely against the old or the new member, and the FIFO
        batch order makes the old→new verdict boundary monotone in
        submission order.  Returns the replaced monitor.
        """
        old = self.registry.replace(name, monitor, version=version)
        self.stats.record_event("promote", name, version=version)
        return old

    def attach_shadow(
        self,
        name: str,
        candidate,
        live_name: str,
        disagreement_budget: Optional[float] = None,
        min_frames: int = 64,
        on_breach=None,
    ):
        """Score ``candidate`` in *shadow* of the live monitor ``live_name``.

        The candidate is wrapped in a
        :class:`~repro.lifecycle.shadow.ShadowScorer` and registered under
        ``name``: it scores every live micro-batch through the same shared
        engine pass as the live members, but its verdicts are diverted into
        an agreement/disagreement ledger instead of being served.  Returns
        the shadow wrapper (its ``ledger`` holds the running confusion).
        """
        from ..lifecycle.shadow import ShadowScorer

        if live_name not in self.registry:
            raise ConfigurationError(
                f"cannot shadow '{live_name}': no such live monitor"
            )
        shadow = ShadowScorer(
            name,
            candidate,
            live_name,
            disagreement_budget=disagreement_budget,
            min_frames=min_frames,
            on_breach=on_breach,
        )
        self.registry.register(name, shadow)
        self.stats.record_event("attach_shadow", name, live=live_name)
        return shadow

    def detach_shadow(self, name: str):
        """Remove a shadow entry; returns the wrapped candidate monitor."""
        entry = self.registry.get(name)
        if entry is None or not getattr(entry, "is_shadow", False):
            raise ConfigurationError(f"no shadow monitor named '{name}' is attached")
        self.registry.unregister(name)
        self.stats.record_event("detach_shadow", name)
        return entry.candidate

    def shadow_names(self) -> List[str]:
        """Names of the currently attached shadow entries."""
        return [
            name
            for name, monitor in self.registry.snapshot().items()
            if getattr(monitor, "is_shadow", False)
        ]

    def set_matcher_backend(self, backend):
        """Switch every hosted monitor's matcher kernel mid-stream.

        Matcher back-ends (see :mod:`repro.runtime.kernels`) are bit-for-bit
        equivalent, so verdicts are unaffected — only the execution engine
        of pattern membership changes.  Returns the names of the monitors
        that adopted the new back-end.
        """
        return self.registry.set_matcher_backend(backend)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "StreamingScorer":
        """Start the worker thread (idempotent while running)."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("cannot restart a closed scorer")
            if self._worker is not None and self._worker.is_alive():
                return self
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-streaming-scorer", daemon=True
            )
            self._worker.start()
        return self

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting frames and shut the worker down.

        ``drain=True`` (the default) scores everything still queued before
        the worker exits; ``drain=False`` cancels pending futures instead.
        """
        to_cancel: List[FrameRequest] = []
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = drain
            if not drain:
                for batch in self._batcher.drain():
                    to_cancel.extend(batch)
            worker = self._worker
            self._wakeup.notify_all()
        # Futures are cancelled outside the lock: cancel() runs done-
        # callbacks synchronously, and a callback that re-enters the scorer
        # must not deadlock (mirrors _score_batch resolving outside it).
        cancelled = sum(1 for request in to_cancel if request.future.cancel())
        if cancelled:
            self.stats.record_cancelled(cancelled)
        if worker is not None:
            worker.join(timeout)

    def quiesce(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted frame has resolved (or ``timeout``).

        Returns True when the pipeline drained.  This is the promotion
        barrier of the lifecycle manager: quiesce, then swap — every frame
        submitted before the quiesce began has provably been scored against
        the pre-swap registry snapshot.
        """
        deadline = None if timeout is None else self._clock() + timeout
        while self.stats.in_flight() > 0:
            if deadline is not None and self._clock() >= deadline:
                return False
            with self._lock:
                # Nudge the worker: a deadline-pending batch should flush
                # now rather than keep the quiescing thread waiting.
                self._wakeup.notify_all()
            time.sleep(0.001)
        return True

    def describe(self) -> Dict[str, object]:
        """Identity snapshot: registry entries with fingerprints/versions."""
        return {
            "kind": "streaming_scorer",
            "registry": self.registry.describe(),
            "shadows": self.shadow_names(),
            "max_batch": self.policy.max_batch,
            "max_latency": self.policy.max_latency,
        }

    def __enter__(self) -> "StreamingScorer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _coerce_frames(self, frames: np.ndarray, expect_many: bool) -> np.ndarray:
        # Always copy: the queue must own the frame data, because producers
        # routinely refill their sensor buffer the moment submit() returns,
        # long before the worker flushes the micro-batch.
        frames = np.array(frames, dtype=np.float64, copy=True)
        if frames.ndim == 1 and not expect_many:
            frames = frames[None, :]
        frames = np.atleast_2d(frames)
        if frames.ndim != 2:
            raise ShapeError(
                f"expected a frame vector or (N, d) burst, got shape {frames.shape}"
            )
        if frames.shape[0] and frames.shape[1] == 0:
            raise ShapeError("frames must have at least one feature")
        if self._frame_dim is None:
            expected = getattr(self.network, "input_dim", None)
            self._frame_dim = int(expected) if expected else frames.shape[1]
        if frames.shape[0] and frames.shape[1] != self._frame_dim:
            raise ShapeError(
                f"frame width {frames.shape[1]} does not match the host "
                f"network's input dimension {self._frame_dim}"
            )
        return frames

    def submit(self, frame: np.ndarray) -> "Future[FrameResult]":
        """Queue one frame; returns the future of its :class:`FrameResult`."""
        frames = self._coerce_frames(frame, expect_many=False)
        if frames.shape[0] != 1:
            raise ShapeError("submit() takes exactly one frame; use submit_many")
        return self._submit_coerced(frames)[0]

    def submit_many(self, frames: np.ndarray) -> List["Future[FrameResult]"]:
        """Queue a burst of frames; returns one future per row, in order.

        The whole burst is enqueued under one lock acquisition, so a burst
        is coalesced together (and with whatever else is pending) rather
        than trickling into the worker one frame at a time.
        """
        return self._submit_coerced(self._coerce_frames(frames, expect_many=True))

    def _submit_coerced(self, frames: np.ndarray) -> List["Future[FrameResult]"]:
        now = self._clock()
        requests = [FrameRequest(frame=row, enqueued_at=now) for row in frames]
        with self._lock:
            if self._closed:
                raise ServiceClosedError(
                    "the streaming scorer is closed and no longer accepts frames"
                )
            if self._worker is None or not self._worker.is_alive():
                raise ServiceClosedError(
                    "the streaming scorer is not running; call start() first"
                )
            if requests and self._batcher.would_overflow(len(requests)):
                raise ServiceOverloadedError(
                    f"enqueueing {len(requests)} frame(s) would exceed "
                    f"max_pending={self.policy.max_pending}; shed load or "
                    "widen the policy"
                )
            for request in requests:
                self._batcher.append(request)
            if requests:
                self._wakeup.notify_all()
        self.stats.record_submitted(len(requests))
        return [request.future for request in requests]

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while True:
                    if self._closed:
                        break
                    now = self._clock()
                    if self._batcher.ready(now):
                        break
                    deadline = self._batcher.deadline()
                    timeout = None if deadline is None else max(0.0, deadline - now)
                    self._wakeup.wait(timeout)
                if self._closed and (not self._draining or len(self._batcher) == 0):
                    return
                reason = (
                    "drain"
                    if self._closed
                    else ("size" if self._batcher.full else "deadline")
                )
                batch = self._batcher.take()
            if batch:
                self._score_batch(batch, reason)

    def _score_batch(self, batch: List[FrameRequest], reason: str) -> None:
        requests = [
            request
            for request in batch
            if request.future.set_running_or_notify_cancel()
        ]
        cancelled = len(batch) - len(requests)
        if cancelled:
            self.stats.record_cancelled(cancelled)
        if not requests:
            return
        inputs = np.vstack([request.frame for request in requests])
        monitors = self.registry.snapshot()
        shadows = [
            monitor
            for monitor in monitors.values()
            if getattr(monitor, "is_shadow", False)
        ]
        try:
            score = self.engine.score_batch(
                monitors,
                inputs,
                want_verdicts=self.want_verdicts,
                use_cache=self.cache_batches,
            )
            # Shadow verdicts are diverted into their ledgers (confusion vs
            # the live monitor they trail) and stripped from the served
            # results — a shadow candidate is *observed*, never served.
            for shadow in shadows:
                shadow.observe(
                    score.warns.pop(shadow.name),
                    score.warns.get(shadow.live_name),
                )
                if self.want_verdicts:
                    score.verdicts.pop(shadow.name, None)
            results = []
            for row in range(len(requests)):
                warns = {
                    name: bool(flags[row]) for name, flags in score.warns.items()
                }
                verdicts = (
                    {name: vs[row] for name, vs in score.verdicts.items()}
                    if self.want_verdicts
                    else None
                )
                results.append(FrameResult(warns=warns, verdicts=verdicts))
        except BaseException as exc:  # propagate the failure into every future
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            self.stats.record_batch(len(requests), reason, (), failed=True)
            return
        done = self._clock()
        latencies = [done - request.enqueued_at for request in requests]
        for request, result in zip(requests, results):
            request.future.set_result(result)
        self.stats.record_batch(len(requests), reason, latencies, failed=False)
