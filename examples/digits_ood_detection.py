"""Out-of-distribution detection for a digit classifier (MNIST-style workload).

Reproduces the per-class monitoring setup of the prior work the paper builds
on (Cheng et al. DATE'19): a classifier is trained on synthetic digits, one
Boolean activation-pattern monitor is built per predicted class, and the
monitor is asked to flag inputs the network was never trained on — novel
glyph shapes and heavily corrupted images — while staying quiet on
in-distribution digits.  The robust construction is then applied with a small
pixel-level Δ and the false-positive/detection trade-off is printed.

Run with:  python examples/digits_ood_detection.py
"""

from repro import (
    ClassConditionalMonitor,
    MonitorBuilder,
    PerturbationSpec,
    build_digits_workload,
    default_monitored_layer,
)
from repro.data import generate_novel_glyphs, sensor_noise_scenario
from repro.eval import format_rate, format_table
from repro.nn import accuracy

DELTA = 0.005
NUM_CLASSES = 5


def evaluate(monitor, workload, ood_sets):
    """Return (false-positive rate, {scenario: detection rate})."""
    fp = monitor.warning_rate(workload.in_odd_eval.inputs)
    detection = {name: monitor.warning_rate(inputs) for name, inputs in ood_sets.items()}
    return fp, detection


def main() -> None:
    print("Training the digit classifier...")
    workload = build_digits_workload(
        num_samples=500, num_classes=NUM_CLASSES, epochs=12, seed=3
    )
    network = workload.network
    layer = default_monitored_layer(network)
    test_accuracy = accuracy(
        network, workload.in_odd_eval.inputs, workload.in_odd_eval.targets
    )
    print(f"  held-out accuracy: {test_accuracy:.3f}; monitored layer: {layer}")

    print("Generating out-of-distribution evaluation sets...")
    glyphs = generate_novel_glyphs(100, seed=9)
    corrupted = sensor_noise_scenario(workload.in_odd_eval, noise_std=0.3, seed=10)
    ood_sets = {"novel glyphs": glyphs.inputs, "sensor noise": corrupted.inputs}

    rows = []
    family_options = {"minmax": {}, "boolean": {"thresholds": "mean"}}
    for family, options in family_options.items():
        for label, spec in [("standard", None), ("robust", PerturbationSpec(delta=DELTA))]:
            monitor = ClassConditionalMonitor(
                MonitorBuilder(family, layer, perturbation=spec, **options),
                num_classes=NUM_CLASSES,
            )
            monitor.fit(network, workload.train.inputs, labels=workload.train.targets)
            fp, detection = evaluate(monitor, workload, ood_sets)
            rows.append(
                [
                    f"{label} per-class {family}",
                    format_rate(fp),
                    format_rate(detection["novel glyphs"]),
                    format_rate(detection["sensor noise"]),
                ]
            )

    print()
    print(
        format_table(
            ["monitor", "in-ODD false positives", "novel glyphs detected", "sensor noise detected"],
            rows,
            title="Per-class activation-pattern monitoring on the digits workload",
        )
    )
    print(
        "\nA warning means: the activation pattern at the monitored layer was never "
        "seen (up to the abstraction) for the predicted class during training."
    )


if __name__ == "__main__":
    main()
