"""Online monitor lifecycle: shadow scoring, promotion and rollback safety.

A deployed monitor is only as good as the ODD snapshot it was fitted on.
When the operational feed drifts — here, a brightness shift the operator
later validates as legitimate — the paper's ``⊎`` fold lets the monitor
absorb the new nominal band *online*, but swapping a half-vetted monitor
into a live service is exactly how silent alarms get lost.  The lifecycle
subsystem makes that swap safe, demonstrated end to end:

1. **Serve with lifecycle control** — ``pipeline.serve(lifecycle=True)``
   wraps the streaming scorer in a :class:`~repro.lifecycle.LifecycleManager`
   backed by a versioned :class:`~repro.lifecycle.MonitorStore`.
2. **Drift** — the feed brightens; the live min-max monitor floods with
   warnings it was never meant to raise.
3. **Refit in shadow** — ``refit_and_stage`` clones the live monitor, folds
   in the validated drifted band, and runs the refit *in shadow*: it scores
   every live micro-batch, building a disagreement ledger, while the served
   verdicts still come from the old version.
4. **Promote atomically** — once the ledger shows the refit disagrees only
   where intended, promotion quiesces the scorer and swaps versions; a
   post-promotion watch keeps the old version trailing the new live, ready
   to roll back automatically if real traffic diverges.

Run with:  python examples/lifecycle.py
"""

import numpy as np

from repro import MonitorPipeline, build_track_workload
from repro.eval import format_lifecycle_report, format_shadow_report


def warn_rate(scorer, frames, name="standard"):
    futures = scorer.submit_many(frames)
    verdicts = [future.result(30.0).warns[name] for future in futures]
    return sum(verdicts) / len(verdicts)


def main() -> None:
    print("Training the track workload and serving it with lifecycle control...")
    workload = build_track_workload(num_samples=240, epochs=8, seed=42)
    pipeline = MonitorPipeline(workload, family="minmax")
    scorer = pipeline.serve(lifecycle=True)
    manager = scorer.lifecycle
    rng = np.random.default_rng(0)

    nominal = workload.in_odd_eval.inputs
    # The drifted feed: a brightness shift on the same scenes.  Out-of-band
    # for the deployed monitor -- until the operator validates it as nominal.
    drifted = np.clip(nominal + rng.uniform(0.10, 0.20, size=(nominal.shape[0], 1)), 0, 1)

    try:
        # ------------------------------------------------------------------
        # 1. The deployed monitor on its own ODD, then under drift.
        # ------------------------------------------------------------------
        print(f"\nwarn rate on the fitted ODD:    {warn_rate(scorer, nominal):5.1%}")
        print(f"warn rate on the drifted feed:  {warn_rate(scorer, drifted):5.1%}")

        # ------------------------------------------------------------------
        # 2. Refit online and vet the result in shadow.
        # ------------------------------------------------------------------
        version = manager.refit_and_stage("standard", drifted, min_frames=32)
        print(f"\nstaged refit of 'standard' as v{version}; shadow-scoring it...")
        for begin in range(0, drifted.shape[0], 16):  # live traffic keeps flowing
            warn_rate(scorer, drifted[begin : begin + 16])
        print(format_shadow_report(manager.shadow_report()))
        print("(live_only = frames the old monitor warns on, the refit accepts)")

        # ------------------------------------------------------------------
        # 3. Promote with a post-promotion watch, mid-stream.
        # ------------------------------------------------------------------
        promoted = manager.promote("standard", watch_budget=0.7, watch_frames=64)
        print(f"\npromoted 'standard' to v{promoted} (old version watching)")
        print(f"warn rate on the drifted feed:  {warn_rate(scorer, drifted):5.1%}")
        print(f"warn rate on the original ODD:  {warn_rate(scorer, nominal):5.1%}")
        print(format_lifecycle_report(manager.status()))

        # ------------------------------------------------------------------
        # 4. Rollback stays one call away (the store keeps every version).
        # ------------------------------------------------------------------
        rolled = manager.rollback("standard")
        print(f"rolled back to v{rolled}; "
              f"drifted-feed warn rate is {warn_rate(scorer, drifted):5.1%} again")
    finally:
        scorer.close()


if __name__ == "__main__":
    main()
