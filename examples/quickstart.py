"""Quickstart: build a robust activation-pattern monitor in a few lines.

This example follows the paper's workflow end to end on the synthetic
race-track workload:

1. generate in-ODD training data and train a small waypoint-regression DNN;
2. build a *standard* min-max monitor and a *provably robust* one
   (perturbation budget Δ at the input layer, interval bound propagation);
3. compare their false-positive rates on in-ODD data and their detection
   rates on out-of-ODD scenarios (dark, construction site, ice on track).

Run with:  python examples/quickstart.py
"""

from repro import MonitorPipeline, PerturbationSpec, build_track_workload


def main() -> None:
    print("Building the track/waypoint workload (train DNN + evaluation data)...")
    workload = build_track_workload(num_samples=300, epochs=10, seed=0)
    print(f"  network: {workload.network}")
    print(f"  training scenes: {workload.train.num_samples}")
    print(f"  out-of-ODD scenarios: {sorted(workload.out_of_odd_eval)}")

    # Δ is the per-pixel perturbation budget the monitor must tolerate; the
    # robust monitor provably never warns on inputs within Δ of training data.
    perturbation = PerturbationSpec(delta=0.005, layer=0, method="box")

    pipeline = MonitorPipeline(workload, family="minmax", perturbation=perturbation)
    print("\nFitting standard and robust min-max monitors on the training data...")
    result = pipeline.run()

    print()
    print(result.format(title="Standard vs. robust monitor on the track workload"))

    reduction = result.false_positive_reduction("standard", "robust")
    print(
        f"\nFalse-positive reduction from the robust construction: {reduction:.1%} "
        "(the paper reports ~80%: 0.62% -> 0.125%)"
    )
    change = result.detection_rate_change("standard", "robust")
    print(f"Change in mean out-of-ODD detection rate: {change:+.1%}")


if __name__ == "__main__":
    main()
