"""Tuning the robust monitor: Δ sweep, bit granularity and back-end choice.

The robust construction has three knobs:

* the perturbation budget Δ (larger = fewer false positives, eventually less
  detection);
* the number of bits per monitored neuron (more bits = finer abstraction);
* the bound-propagation back-end (box / zonotope / star — tighter bounds keep
  more of the abstraction's precision at the same Δ).

This example sweeps all three on the track workload and prints the resulting
false-positive / detection trade-off tables, mirroring the ablations a user
would run before deploying a monitor.

Run with:  python examples/interval_monitor_tuning.py
"""

import numpy as np

from repro import build_track_workload, default_monitored_layer
from repro.data import perturb_dataset_inputs
from repro.eval import (
    MonitorExperiment,
    bit_width_sweep,
    delta_sweep,
    format_results_table,
    method_sweep,
)

BASE_DELTA = 0.005


def main() -> None:
    print("Preparing the track workload...")
    workload = build_track_workload(num_samples=300, epochs=10, seed=21)
    network = workload.network
    layer = default_monitored_layer(network)

    rng = np.random.default_rng(2)
    perturbed_training = perturb_dataset_inputs(workload.train.inputs, BASE_DELTA, rng=rng)
    in_odd = np.vstack([perturbed_training, workload.in_odd_eval.inputs])
    experiment = MonitorExperiment(
        network,
        workload.train.inputs,
        in_odd,
        {name: data.inputs for name, data in workload.out_of_odd_eval.items()},
    )

    print("\n1) Δ sweep (min-max monitors; Δ = 0 is the standard monitor)")
    rows = delta_sweep(
        experiment, "minmax", layer, deltas=[0.0, 0.002, 0.005, 0.01, 0.02]
    )
    print(
        format_results_table(
            rows,
            ["delta", "false_positive_rate_pct", "mean_detection_rate_pct"],
            title="Δ sweep",
        )
    )

    print("\n2) Bit-granularity sweep (robust interval monitors at Δ = 0.005)")
    rows = bit_width_sweep(
        experiment, layer, cut_counts=(1, 3, 7), delta=BASE_DELTA
    )
    print(
        format_results_table(
            rows,
            ["num_cuts", "bits", "false_positive_rate_pct", "mean_detection_rate_pct"],
            title="bit-width sweep",
        )
    )

    print("\n3) Bound-propagation back-end sweep (robust min-max at Δ = 0.005)")
    rows = method_sweep(experiment, "minmax", layer, delta=BASE_DELTA)
    print(
        format_results_table(
            rows,
            ["method", "false_positive_rate_pct", "mean_detection_rate_pct"],
            title="back-end sweep",
        )
    )

    print(
        "\nReading the tables: pick the smallest Δ that brings in-ODD false positives "
        "to the target level, then spend bits/back-end precision to recover detection."
    )


if __name__ == "__main__":
    main()
