"""Deployment artefacts, quantitative scores and monitorability analysis.

Beyond the binary warn/no-warn decision of the paper, a deployed monitoring
stack needs three practical capabilities, all demonstrated here:

1. **Serialisation** — the monitor is built offline from the training data
   and shipped as an artefact next to the frozen network
   (`repro.monitors.save_monitor` / `load_monitor`).
2. **Quantitative scores** — instead of a hard warning, report *how far* the
   observed activation is from the abstraction (envelope distance, pattern
   Hamming distance), enabling graded degradation policies.
3. **Monitorability analysis** — the paper's conclusion notes that some
   monitors show 0% false positives but raise almost no warnings; the
   coverage/saturation report quantifies how much discriminative power a
   fitted monitor actually retains.

Run with:  python examples/deployment_and_scoring.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import PerturbationSpec, build_track_workload, default_monitored_layer
from repro.data import dark_scenario
from repro.eval import format_table, monitorability_report
from repro.monitors import (
    BooleanPatternMonitor,
    EnvelopeDistanceMonitor,
    PatternDistanceMonitor,
    RobustMinMaxMonitor,
    load_monitor,
    save_monitor,
)
from repro.nn import save_network

DELTA = 0.005


def main() -> None:
    print("Training the track workload and fitting a robust min-max monitor...")
    workload = build_track_workload(num_samples=240, epochs=8, seed=42)
    network = workload.network
    layer = default_monitored_layer(network)
    monitor = RobustMinMaxMonitor(
        network, layer, PerturbationSpec(delta=DELTA, layer=0, method="box")
    ).fit(workload.train.inputs)

    # ------------------------------------------------------------------
    # 1. Ship the artefacts: network + monitor, then reload them.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as directory:
        network_path = save_network(network, Path(directory) / "waypoint_net.npz")
        monitor_path = save_monitor(monitor, Path(directory) / "robust_monitor.npz")
        print(f"  saved network  -> {network_path.name}")
        print(f"  saved monitor  -> {monitor_path.name}")
        restored = load_monitor(monitor_path, network)
        agreement = np.array_equal(
            restored.warn_batch(workload.in_odd_eval.inputs),
            monitor.warn_batch(workload.in_odd_eval.inputs),
        )
        print(f"  reloaded monitor agrees with the original: {agreement}")

    # ------------------------------------------------------------------
    # 2. Quantitative scores instead of binary warnings.
    # ------------------------------------------------------------------
    scorer = EnvelopeDistanceMonitor(monitor)
    nominal = workload.in_odd_eval.inputs
    dark = dark_scenario(workload.in_odd_eval, seed=1).inputs
    print()
    print(
        format_table(
            ["evaluation set", "mean score", "95th percentile score"],
            [
                ["in-ODD (nominal)", f"{scorer.score_batch(nominal).mean():.4f}",
                 f"{np.percentile(scorer.score_batch(nominal), 95):.4f}"],
                ["out-of-ODD (dark)", f"{scorer.score_batch(dark).mean():.4f}",
                 f"{np.percentile(scorer.score_batch(dark), 95):.4f}"],
            ],
            title="Envelope-distance scores (0 = inside the abstraction)",
        )
    )

    # ------------------------------------------------------------------
    # 3. Monitorability of a pattern monitor at the same layer.
    # ------------------------------------------------------------------
    pattern_monitor = BooleanPatternMonitor(network, layer, thresholds="mean").fit(
        workload.train.inputs
    )
    report = monitorability_report(pattern_monitor)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["stored patterns", report.pattern_count],
                ["BDD nodes", report.bdd_nodes],
                ["pattern-space coverage", f"{report.coverage:.2e}"],
                ["neuron saturation", f"{report.saturation:.2f}"],
                ["monitorability score", f"{report.monitorability:.3f}"],
            ],
            title="Monitorability report for the Boolean pattern monitor",
        )
    )
    distance_scorer = PatternDistanceMonitor(pattern_monitor, max_distance=4)
    print(
        "\nPattern Hamming distance of a dark-scene frame: "
        f"{distance_scorer.distance(dark[0])} positions "
        f"(score {distance_scorer.score(dark[0]):.2f})"
    )


if __name__ == "__main__":
    main()
