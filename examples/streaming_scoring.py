"""Online monitoring with the streaming micro-batch scoring service.

The paper's monitors run *next to* the deployed network, flagging abnormal
activation patterns frame by frame.  This example shows the serving story:

1. build the race-track workload and fit a standard + robust monitor pair
   via the pipeline's :meth:`~repro.core.pipeline.MonitorPipeline.serve`
   entry point, which returns a *running* streaming scorer;
2. stream a mixed sensor feed (nominal frames with a burst of dark scenes
   in the middle) frame by frame and act on each verdict as it resolves;
3. compare micro-batched service throughput against the frame-at-a-time
   deployment loop, and print the service's latency/batching report.

Run with:  python examples/streaming_scoring.py
"""

import numpy as np

from repro import MonitorPipeline, PerturbationSpec, build_track_workload
from repro.data import dark_scenario
from repro.eval import format_service_report, measure_streaming_throughput
from repro.service import BatchPolicy

DELTA = 0.002


def main() -> None:
    print("Training the track workload and fitting standard + robust monitors...")
    workload = build_track_workload(num_samples=240, epochs=8, seed=42)
    pipeline = MonitorPipeline(
        workload,
        family="minmax",
        perturbation=PerturbationSpec(delta=DELTA, layer=0, method="box"),
    )

    # A sensor feed: nominal frames with a dark-scene burst in the middle.
    nominal = workload.in_odd_eval.inputs
    dark = dark_scenario(workload.in_odd_eval, seed=1).inputs
    feed = np.vstack([nominal[:30], dark[:20], nominal[30:60]])

    # ------------------------------------------------------------------
    # 1. Frame-by-frame streaming with per-frame futures.
    # ------------------------------------------------------------------
    with pipeline.serve(max_batch=16, max_latency=0.005) as scorer:
        futures = [scorer.submit(frame) for frame in feed]
        warned_frames = []
        for index, future in enumerate(futures):
            result = future.result(timeout=30)
            if result.warns["robust"]:
                warned_frames.append(index)
        print(
            f"\nStreamed {len(feed)} frames; the robust monitor warned on "
            f"{len(warned_frames)} (first warnings at indices "
            f"{warned_frames[:5]}; the dark burst spans 30..49)."
        )
        print()
        print(format_service_report(scorer.stats.snapshot()))

    # ------------------------------------------------------------------
    # 2. Micro-batching vs frame-at-a-time throughput.
    # ------------------------------------------------------------------
    import time

    monitor = pipeline.robust_builder.build_and_fit(
        workload.network, workload.train.inputs
    )
    replay = np.tile(feed, (4, 1))
    start = time.perf_counter()
    for frame in replay:
        monitor.warn(frame)
    loop_time = time.perf_counter() - start

    with pipeline.serve(policy=BatchPolicy(max_batch=32, max_latency=0.002)) as scorer:
        throughput = measure_streaming_throughput(scorer, replay, burst_size=32)
    print(
        f"\nThroughput over {replay.shape[0]} frames: "
        f"frame-at-a-time {replay.shape[0] / loop_time:.0f} frames/s, "
        f"micro-batched {throughput['frames_per_second']:.0f} frames/s "
        f"({loop_time / throughput['wall_time_s']:.1f}x; the service scores "
        "both registered monitors per frame, the loop only one)."
    )


if __name__ == "__main__":
    main()
