"""Out-of-process monitor serving: socket front-end + worker pool.

The streaming example (`examples/streaming_scoring.py`) scores frames on a
worker *thread* inside the producer's process.  This example takes the same
monitors out of process, the way a lab deployment isolates the monitored
controller from the monitoring stack:

1. **Deployment bundle** — the fitted standard + robust monitors and their
   frozen network are serialized into one directory
   (`repro.serving.save_deployment`); worker processes boot from these
   artefacts, which is what makes their verdicts bit-identical to the
   offline `warn_batch` path.
2. **Worker pool + socket server** — `MonitorPipeline.serve(remote=True)`
   spawns N scoring processes fed through shared memory and puts a TCP
   server speaking the length-prefixed scoring protocol in front of them.
3. **Clients** — a blocking `ScoringClient` scores frame batches and
   pipelines many requests on one connection; crash recovery is
   demonstrated by killing a worker mid-stream and observing that no
   accepted frame is lost.

Run with:  python examples/remote_scoring.py
"""

import multiprocessing

import numpy as np

from repro import MonitorPipeline, build_track_workload
from repro.eval import format_scaling_report, format_service_report, measure_remote_throughput
from repro.serving import ScoringClient


def main() -> None:
    print("Training the track workload and fitting standard + robust monitors...")
    workload = build_track_workload(num_samples=240, epochs=8, seed=42)
    pipeline = MonitorPipeline(workload, family="minmax")

    print("Starting a 2-worker scoring service on a local socket...")
    server = pipeline.serve(remote=True, num_workers=2, max_batch=32, max_latency=0.003)
    host, port = server.address
    print(f"  serving on {host}:{port}")

    frames = workload.in_odd_eval.inputs
    with ScoringClient(server.address, timeout=60) as client:
        # --------------------------------------------------------------
        # 1. one blocking request
        # --------------------------------------------------------------
        warns = client.score(frames[:16])
        for name, flags in warns.items():
            print(f"  {name:>8}: {int(np.sum(flags))}/{len(flags)} frames warned")

        # --------------------------------------------------------------
        # 2. pipelining: many requests in flight on one connection
        # --------------------------------------------------------------
        futures = [client.score_async(frames[i : i + 8]) for i in range(0, 64, 8)]
        resolved = [future.result(60) for future in futures]
        print(f"  pipelined {len(resolved)} bursts on one connection")

        # --------------------------------------------------------------
        # 3. crash recovery: kill a worker mid-stream, lose nothing
        # --------------------------------------------------------------
        pool = server.scorer
        pool.inject_worker_crash()
        warns = client.score(frames[:24])  # the batch that kills its worker
        print(
            f"  crash survived: {len(next(iter(warns.values())))} frames resolved, "
            f"restarts={pool.restarts}"
        )

        # --------------------------------------------------------------
        # 4. throughput measurement + service report over the wire
        # --------------------------------------------------------------
        metrics = measure_remote_throughput(client, frames, burst_size=16)
        print()
        print(
            format_scaling_report(
                {"remote, 2 workers": metrics}, title="Remote scoring throughput"
            )
        )
        print()
        print(format_service_report(client.stats(), title="Service stats (over the wire)"))

    print("\nShutting down (drain=True waits for in-flight work)...")
    server.close(drain=True, timeout=120)
    leftover = multiprocessing.active_children()
    print(f"  child processes after close: {leftover if leftover else 'none'}")


if __name__ == "__main__":
    main()
