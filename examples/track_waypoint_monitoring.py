"""Race-track deployment scenario (the paper's Figure 2 workload).

A visual-waypoint DNN is trained on synthetic top-down track images.  The
monitored layer is the last hidden activation layer; three monitor families
are compared (min-max, Boolean on/off patterns, 2-bit interval patterns) in
both their standard and robust variants, against:

* in-ODD evaluation data — held-out scenes plus Δ-bounded re-measurements of
  training scenes (the aleatory noise of a real data-collection campaign);
* engineered out-of-ODD scenarios — dark conditions, a construction site on
  the track, ice — the situations the monitor must flag.

Run with:  python examples/track_waypoint_monitoring.py
"""

import numpy as np

from repro import (
    MonitorBuilder,
    PerturbationSpec,
    build_track_workload,
    default_monitored_layer,
)
from repro.data import perturb_dataset_inputs
from repro.eval import MonitorExperiment

DELTA = 0.005


def main() -> None:
    print("Training the waypoint DNN on synthetic track imagery...")
    workload = build_track_workload(
        num_samples=360,
        epochs=12,
        seed=7,
        scenarios=["dark", "construction", "ice"],
    )
    network = workload.network
    layer = default_monitored_layer(network)
    print(f"  monitored layer: {layer} ({network.layer_output_dim(layer)} neurons)")

    # In-ODD evaluation set: Δ-perturbed training scenes + jittered held-out scenes.
    rng = np.random.default_rng(1)
    perturbed_training = perturb_dataset_inputs(workload.train.inputs, DELTA, rng=rng)
    in_odd = np.vstack([perturbed_training, workload.in_odd_eval.inputs])

    experiment = MonitorExperiment(
        network,
        workload.train.inputs,
        in_odd,
        {name: data.inputs for name, data in workload.out_of_odd_eval.items()},
    )

    spec = PerturbationSpec(delta=DELTA, layer=0, method="box")
    builders = {
        "minmax (standard)": MonitorBuilder("minmax", layer),
        "minmax (robust)": MonitorBuilder("minmax", layer, perturbation=spec),
        "boolean (standard)": MonitorBuilder("boolean", layer, thresholds="mean"),
        "boolean (robust)": MonitorBuilder("boolean", layer, perturbation=spec, thresholds="mean"),
        "interval (standard)": MonitorBuilder("interval", layer, num_cuts=3),
        "interval (robust)": MonitorBuilder("interval", layer, perturbation=spec, num_cuts=3),
    }

    print("Fitting six monitors (three families, standard + robust)...")
    result = experiment.run_builders(builders)
    print()
    print(result.format(title="Track deployment: false positives and per-scenario detection"))

    print("\nRobust-vs-standard false-positive reduction per family:")
    for family in ("minmax", "boolean", "interval"):
        reduction = result.false_positive_reduction(
            f"{family} (standard)", f"{family} (robust)"
        )
        print(f"  {family:10s}: {reduction:6.1%}")


if __name__ == "__main__":
    main()
