"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that fully offline environments without the ``wheel`` package can still do
an editable install via ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
