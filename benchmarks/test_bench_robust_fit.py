"""E10 — robust-fit wall time: per-sample loop vs batched propagation.

The robust monitor construction of Definition 1 computes one perturbation
estimate per training input.  The seed implementation propagated them one at
a time through the symbolic back-ends; the batched path pushes the whole
training set through one abstract-domain walk.  This benchmark measures
robust-fit wall time against training-set size for both paths and records
the batched timings (plus the achieved speedup) into the perf-regression
gate (see ``benchmarks/conftest.py`` and ``benchmarks/perf_gate.py``).

Quick mode shrinks the size grid; the full run checks the ≥5× speedup
acceptance bar at 512 training samples for the default box back-end.
"""

import os
import time

import numpy as np
import pytest

from repro.eval.reporting import format_table
from repro.monitors.boolean import RobustBooleanPatternMonitor
from repro.monitors.minmax import RobustMinMaxMonitor
from repro.monitors.perturbation import (
    PerturbationSpec,
    collect_bound_arrays,
    collect_bound_arrays_loop,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

DELTA = 0.01
INPUT_DIM = 8
MONITORED_LAYER = 4
SIZES = [64, 128] if QUICK else [128, 256, 512]
#: Star-backed fits solve LPs per row even on the batched path, so the
#: end-to-end gate entry runs at a deliberately small n in every mode.
STAR_SIZE = 32
#: Only the largest size feeds the CI perf gate: its timings are big enough
#: to sit well clear of timer/scheduler jitter at the 25% threshold.  Smaller
#: sizes are still recorded with a "_" prefix (informational, not gated).
GATE_SIZE = SIZES[-1]


@pytest.fixture(scope="module")
def fit_network():
    from repro.nn.network import mlp

    return mlp(INPUT_DIM, [48, 32], 3, activation="relu", seed=77)


@pytest.fixture(scope="module")
def fit_inputs():
    rng = np.random.default_rng(7)
    return rng.uniform(-1.0, 1.0, size=(max(SIZES), INPUT_DIM))


def _time_once(workload):
    start = time.perf_counter()
    workload()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="E10-robust-fit-scaling")
@pytest.mark.parametrize("method", ["box", "zonotope"])
def test_robust_fit_loop_vs_batched(bench_record, fit_network, fit_inputs, method):
    spec = PerturbationSpec(delta=DELTA, layer=0, method=method)
    rows = []
    speedups = {}
    for size in SIZES:
        inputs = fit_inputs[:size]
        loop_time = _time_once(
            lambda: collect_bound_arrays_loop(
                fit_network, inputs, MONITORED_LAYER, spec
            )
        )
        # Batched timings are sub-millisecond; averaging an inner loop keeps
        # the min-of-repeats estimator stable for the 25% regression gate.
        prefix = "" if size == GATE_SIZE else "_"
        name = f"{prefix}robust_fit_{method}_bounds_n{size}"
        inner = 20 if method == "box" else 3
        bench_record.measure(
            name,
            lambda: collect_bound_arrays(fit_network, inputs, MONITORED_LAYER, spec),
            repeats=5,
            inner=inner,
        )
        batched_time = bench_record.timings[name]
        speedups[size] = loop_time / batched_time
        rows.append(
            [
                size,
                f"{loop_time * 1e3:.2f}",
                f"{batched_time * 1e3:.2f}",
                f"{speedups[size]:.1f}x",
            ]
        )
    print("\nE10: robust-fit bound collection, method=" + method)
    print(format_table(["n", "loop_ms", "batched_ms", "speedup"], rows))
    assert all(value > 0 for value in speedups.values())
    if not QUICK and method == "box":
        # Acceptance bar of the batched-propagation refactor.
        assert speedups[512] >= 5.0, f"expected >=5x at n=512, got {speedups[512]:.1f}x"


@pytest.mark.benchmark(group="E10-robust-fit-scaling")
def test_robust_fit_star_bounds(bench_record, fit_network, fit_inputs):
    """Star-backed bound collection end-to-end, watched by the perf gate.

    The micro-benchmark (E15, ``test_bench_star_lp.py``) isolates the
    star-LP tiers; this entry covers the same path the robust monitors
    use — ``collect_bound_arrays`` with a star spec — so a regression in
    the plumbing (anchor pass, lockstep walk, backend resolution) is
    caught even if the isolated solves stay fast.
    """
    from repro.symbolic.star_lp import StackedStarLPBackend

    spec = PerturbationSpec(delta=DELTA, layer=0, method="star")
    inputs = fit_inputs[:STAR_SIZE]
    backend = StackedStarLPBackend()
    backend.reset_stats()
    name = f"robust_fit_star_bounds_n{STAR_SIZE}"
    lows, highs = bench_record.measure(
        name,
        lambda: collect_bound_arrays(
            fit_network, inputs, MONITORED_LAYER, spec, star_lp_backend=backend
        ),
        repeats=3,
    )
    stats = dict(backend.stats)
    bench_record.annotate(
        name,
        backend="stacked",
        closed_form_stars=stats["closed_form_stars"],
        lp_stars=stats["lp_stars"],
        lp_programs=stats["lp_programs"],
    )
    assert lows.shape == highs.shape == (STAR_SIZE, fit_network.layer_output_dim(MONITORED_LAYER))
    assert np.all(lows <= highs + 1e-12)
    print(
        f"\nE10: star-backed bound collection n={STAR_SIZE}: "
        f"{bench_record.timings[name] * 1e3:.1f} ms "
        f"({stats['lp_programs']} LP programs)"
    )


@pytest.mark.benchmark(group="E10-robust-fit-scaling")
@pytest.mark.parametrize("family", ["minmax", "boolean"])
def test_robust_monitor_fit_wall_time(bench_record, fit_network, fit_inputs, family):
    """End-to-end robust ``fit`` timings feeding the CI perf gate."""
    spec = PerturbationSpec(delta=DELTA, layer=0, method="box")
    classes = {"minmax": RobustMinMaxMonitor, "boolean": RobustBooleanPatternMonitor}
    rows = []
    for size in SIZES:
        inputs = fit_inputs[:size]

        def fit_once():
            return classes[family](fit_network, MONITORED_LAYER, spec).fit(inputs)

        if size == GATE_SIZE:
            inner = 20 if family == "minmax" else 3
            monitor = bench_record.measure(
                f"robust_{family}_fit_n{size}", fit_once, repeats=5, inner=inner
            )
            elapsed = bench_record.timings[f"robust_{family}_fit_n{size}"]
        else:
            start = time.perf_counter()
            monitor = fit_once()
            elapsed = time.perf_counter() - start
        assert monitor.is_fitted and monitor.num_training_samples == size
        rows.append([size, f"{elapsed * 1e3:.2f}"])
    print(f"\nE10: robust {family} monitor fit wall time (batched path)")
    print(format_table(["n", "fit_ms"], rows))
