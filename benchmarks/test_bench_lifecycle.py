"""E14 — lifecycle overheads: shadow scoring and incremental refit.

The lifecycle subsystem adds two recurring costs to a deployed monitor:

* **shadow scoring** — a staged candidate scores every live micro-batch to
  accumulate its disagreement ledger.  The shadow shares the engine pass
  with the live monitor, so the marginal cost is one extra
  ``warn_batch_from_layer`` per batch; the acceptance bar is streaming
  wall time ≤ 1.5× the live-only stream.
* **incremental refit** — extending the live monitor with a batch of newly
  observed nominal frames.  The from-scratch alternative refits on the
  full accumulated history, paying O(total); the incremental path clones
  the live monitor and folds in only the new batch, paying O(new).

Both paths assert verdict equivalence while timing, and the two headline
timings feed the CI perf-regression gate.
"""

import os

import numpy as np
import pytest

from repro.eval.reporting import format_table
from repro.lifecycle import incremental_refit
from repro.monitors import monitor_fingerprint
from repro.monitors.minmax import MinMaxMonitor
from repro.service import BatchPolicy, StreamingScorer

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

NUM_FRAMES = 256 if QUICK else 1024
MAX_BATCH = 64
BURST = 64
FUTURE_TIMEOUT = 60.0

#: The refit batch (ISSUE acceptance point: n=512) and the nominal history
#: already absorbed before it — the full-refit path pays for both.  A
#: long-running deployment's history dwarfs any one batch; the incremental
#: path's fixed cost (the clone round-trip) must amortise against that.
REFIT_BATCH = 128 if QUICK else 512
REFIT_HISTORY = 8192


@pytest.fixture(scope="module")
def live_monitor(track_workload, track_layer):
    return MinMaxMonitor(track_workload.network, track_layer).fit(
        track_workload.train.inputs
    )


@pytest.fixture(scope="module")
def frame_stream(track_workload):
    sources = [track_workload.in_odd_eval.inputs] + [
        dataset.inputs for dataset in track_workload.out_of_odd_eval.values()
    ]
    frames = np.vstack(sources)
    repeats = -(-NUM_FRAMES // frames.shape[0])  # ceil
    return np.tile(frames, (repeats, 1))[:NUM_FRAMES]


@pytest.mark.benchmark(group="E14-lifecycle")
def test_shadow_scoring_overhead(
    bench_record, track_workload, live_monitor, frame_stream
):
    """Streaming with an attached shadow stays within 1.5× of live-only."""
    frames = frame_stream
    candidate = incremental_refit(live_monitor, track_workload.in_odd_eval.inputs)
    offline = live_monitor.warn_batch(frames)
    policy = BatchPolicy(max_batch=MAX_BATCH, max_latency=0.002)

    def stream_once(scorer):
        futures = []
        for begin in range(0, frames.shape[0], BURST):
            futures.extend(scorer.submit_many(frames[begin : begin + BURST]))
        return [future.result(timeout=FUTURE_TIMEOUT) for future in futures]

    with StreamingScorer(track_workload.network, policy=policy) as scorer:
        scorer.register("mon", live_monitor)
        results = bench_record.measure(
            f"_lifecycle_live_only_stream_n{NUM_FRAMES}",
            lambda: stream_once(scorer),
            repeats=3,
        )
        live_time = bench_record.timings[f"_lifecycle_live_only_stream_n{NUM_FRAMES}"]
    served = np.array([result.warns["mon"] for result in results])
    np.testing.assert_array_equal(served, offline)

    with StreamingScorer(track_workload.network, policy=policy) as scorer:
        scorer.register("mon", live_monitor)
        shadow = scorer.attach_shadow("mon@shadow", candidate, "mon")
        results = bench_record.measure(
            f"lifecycle_shadow_stream_n{NUM_FRAMES}",
            lambda: stream_once(scorer),
            repeats=3,
        )
        shadow_time = bench_record.timings[f"lifecycle_shadow_stream_n{NUM_FRAMES}"]
        ledger = shadow.ledger.snapshot()
    served = np.array([result.warns["mon"] for result in results])
    np.testing.assert_array_equal(served, offline)  # shadows never change verdicts
    assert ledger["frames"] >= NUM_FRAMES  # and they saw the whole stream

    overhead = shadow_time / live_time
    bench_record.record("_lifecycle_shadow_overhead_ratio", overhead)
    print(f"\nE14: shadow scoring overhead ({NUM_FRAMES} frames)")
    print(
        format_table(
            ["path", "wall_ms", "frames/s"],
            [
                ["live only", f"{live_time * 1e3:.2f}",
                 f"{frames.shape[0] / live_time:.0f}"],
                ["live + shadow", f"{shadow_time * 1e3:.2f}",
                 f"{frames.shape[0] / shadow_time:.0f}"],
                ["overhead", f"{overhead:.2f}x", ""],
            ],
        )
    )
    # Acceptance bar of the lifecycle subsystem (ISSUE 9): shadow scoring
    # costs at most 50% on top of the live stream.
    assert overhead <= 1.5, f"shadow overhead {overhead:.2f}x exceeds 1.5x"


@pytest.mark.benchmark(group="E14-lifecycle")
def test_incremental_refit_vs_full_refit(bench_record, track_workload, live_monitor):
    """Folding in one new batch beats refitting on the whole history."""
    rng = np.random.default_rng(7)
    width = track_workload.train.inputs.shape[1]
    history = rng.uniform(0.0, 1.0, size=(REFIT_HISTORY, width))
    batch = rng.uniform(0.0, 1.0, size=(REFIT_BATCH, width))
    current = incremental_refit(live_monitor, history)
    full_inputs = np.vstack([track_workload.train.inputs, history, batch])

    incremental = bench_record.measure(
        f"lifecycle_incremental_refit_n{REFIT_BATCH}",
        lambda: incremental_refit(current, batch),
        repeats=3,
    )
    incremental_time = bench_record.timings[
        f"lifecycle_incremental_refit_n{REFIT_BATCH}"
    ]

    full = bench_record.measure(
        f"_lifecycle_full_refit_n{full_inputs.shape[0]}",
        lambda: MinMaxMonitor(
            track_workload.network, live_monitor.layer_index
        ).fit(full_inputs),
        repeats=3,
    )
    full_time = bench_record.timings[f"_lifecycle_full_refit_n{full_inputs.shape[0]}"]

    # Same monitor either way (min-max folding is order-insensitive) ...
    assert monitor_fingerprint(incremental) == monitor_fingerprint(full)
    speedup = full_time / incremental_time
    print(f"\nE14: incremental refit (+{REFIT_BATCH} frames, "
          f"history {full_inputs.shape[0]})")
    print(
        format_table(
            ["path", "wall_ms"],
            [
                ["full refit", f"{full_time * 1e3:.2f}"],
                ["incremental refit", f"{incremental_time * 1e3:.2f}"],
                ["speedup", f"{speedup:.1f}x"],
            ],
        )
    )
    # ... but the incremental path never pays for the absorbed history.
    assert incremental_time < full_time, (
        f"incremental refit ({incremental_time * 1e3:.2f} ms) should beat "
        f"full refit ({full_time * 1e3:.2f} ms)"
    )
