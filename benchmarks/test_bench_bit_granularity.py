"""E8 — multi-bit monitor granularity (Section III-C).

Monitoring a neuron with more than one bit records its value interval at a
finer granularity: detection improves because the abstraction is tighter,
while the robust construction keeps the false-positive rate controlled.  This
benchmark sweeps the number of cut points per neuron (1 cut = the on/off
monitor, 3 cuts = the paper's 2-bit example, 7 cuts = 3 bits) for both the
standard and the robust interval monitors on the track workload.
"""

import pytest

from repro.eval.reporting import format_table
from repro.eval.sweep import bit_width_sweep

TRACK_DELTA = 0.002
CUT_COUNTS = (1, 3, 7)


@pytest.mark.benchmark(group="E8-bit-granularity")
def test_standard_interval_monitor_granularity(benchmark, track_experiment, track_layer):
    rows = benchmark(
        bit_width_sweep,
        track_experiment,
        track_layer,
        cut_counts=CUT_COUNTS,
        cut_strategy="percentile",
    )
    print()
    print(
        format_table(
            ["cuts", "bits", "false positives", "mean detection"],
            [
                [row["num_cuts"], row["bits"], row["false_positive_rate_pct"],
                 row["mean_detection_rate_pct"]]
                for row in rows
            ],
            title="E8: standard interval monitors — granularity sweep",
        )
    )
    detections = [row["mean_detection_rate"] for row in rows]
    # Finer granularity never reduces detection (tighter abstraction).
    assert detections[-1] >= detections[0] - 1e-9


@pytest.mark.benchmark(group="E8-bit-granularity")
def test_robust_interval_monitor_granularity(benchmark, track_experiment, track_layer):
    rows = benchmark(
        bit_width_sweep,
        track_experiment,
        track_layer,
        cut_counts=CUT_COUNTS,
        delta=TRACK_DELTA,
        cut_strategy="percentile",
    )
    print()
    print(
        format_table(
            ["cuts", "bits", "false positives", "mean detection"],
            [
                [row["num_cuts"], row["bits"], row["false_positive_rate_pct"],
                 row["mean_detection_rate_pct"]]
                for row in rows
            ],
            title=f"E8: robust interval monitors (Δ={TRACK_DELTA}) — granularity sweep",
        )
    )
    for row in rows:
        # The Δ-perturbed training scenes dominate the in-ODD set, and Lemma 1
        # keeps them warning-free, so the robust FP rate stays small.
        assert row["false_positive_rate"] <= 0.2
