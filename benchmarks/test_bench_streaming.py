"""E11 — streaming micro-batch scoring vs frame-at-a-time deployment.

The operational story of the paper is a monitor running *online* next to the
network, frame by frame.  Scoring each frame on arrival pays a full
(one-row) forward pass per frame per monitor; the streaming service
coalesces frames into micro-batches and scores every registered monitor
through one shared engine pass.  This benchmark replays an operational
frame stream both ways, asserts the verdicts are identical, pins the
micro-batching speedup (the ISSUE acceptance bar: ≥5×) and records the
streaming wall time into the CI perf-regression gate.
"""

import os
import time

import numpy as np
import pytest

from repro.eval.reporting import format_table
from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.minmax import MinMaxMonitor
from repro.service import BatchPolicy, StreamingScorer

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

NUM_FRAMES = 256 if QUICK else 1024
MAX_BATCH = 64
BURST = 64  # frames per submit_many call (a producer reading a sensor FIFO)
FUTURE_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def service_monitors(track_workload, track_layer):
    train = track_workload.train.inputs
    return {
        "minmax": MinMaxMonitor(track_workload.network, track_layer).fit(train),
        "boolean": BooleanPatternMonitor(
            track_workload.network, track_layer, thresholds="mean"
        ).fit(train),
    }


@pytest.fixture(scope="module")
def frame_stream(track_workload):
    """An operational frame mix: in-ODD scenes plus every OOD scenario."""
    sources = [track_workload.in_odd_eval.inputs] + [
        dataset.inputs for dataset in track_workload.out_of_odd_eval.values()
    ]
    frames = np.vstack(sources)
    repeats = -(-NUM_FRAMES // frames.shape[0])  # ceil
    return np.tile(frames, (repeats, 1))[:NUM_FRAMES]


@pytest.mark.benchmark(group="E11-streaming-service")
def test_streaming_vs_frame_at_a_time(
    bench_record, track_workload, service_monitors, frame_stream
):
    frames = frame_stream
    offline = {
        name: monitor.warn_batch(frames)
        for name, monitor in service_monitors.items()
    }

    # Frame-at-a-time baseline: the pre-service deployment loop, one warn()
    # per frame per monitor (informational; not gated).
    start = time.perf_counter()
    for frame in frames:
        for monitor in service_monitors.values():
            monitor.warn(frame)
    loop_time = time.perf_counter() - start
    bench_record.record(f"_frame_at_a_time_n{NUM_FRAMES}", loop_time)

    policy = BatchPolicy(max_batch=MAX_BATCH, max_latency=0.002)
    with StreamingScorer(track_workload.network, policy=policy) as scorer:
        for name, monitor in service_monitors.items():
            scorer.register(name, monitor)

        def stream_once():
            # The scorer's default is uncached scoring (every micro-batch is
            # fresh content), so repeats pay their real forward passes.
            futures = []
            for begin in range(0, frames.shape[0], BURST):
                futures.extend(scorer.submit_many(frames[begin : begin + BURST]))
            return [future.result(timeout=FUTURE_TIMEOUT) for future in futures]

        results = bench_record.measure(
            f"streaming_micro_batch_n{NUM_FRAMES}", stream_once, repeats=3
        )
        stream_time = bench_record.timings[f"streaming_micro_batch_n{NUM_FRAMES}"]
        stats = scorer.stats.snapshot()

    # Identical verdicts to the offline batch path, per frame, per monitor.
    for name in service_monitors:
        streamed = np.array([result.warns[name] for result in results])
        np.testing.assert_array_equal(streamed, offline[name])

    if "latency_p95_s" in stats:
        bench_record.record(
            f"_streaming_latency_p95_n{NUM_FRAMES}", float(stats["latency_p95_s"])
        )
    speedup = loop_time / stream_time
    print(f"\nE11: streaming service vs frame-at-a-time ({NUM_FRAMES} frames)")
    print(
        format_table(
            ["path", "wall_ms", "frames/s"],
            [
                [
                    "frame-at-a-time",
                    f"{loop_time * 1e3:.2f}",
                    f"{frames.shape[0] / loop_time:.0f}",
                ],
                [
                    "streaming micro-batch",
                    f"{stream_time * 1e3:.2f}",
                    f"{frames.shape[0] / stream_time:.0f}",
                ],
                ["speedup", f"{speedup:.1f}x", ""],
            ],
        )
    )
    print(f"mean batch size: {stats['mean_batch_size']:.1f}")
    # Acceptance bar of the streaming subsystem (ISSUE 3): micro-batched
    # throughput at least 5x the frame-at-a-time loop.
    assert speedup >= 5.0, f"expected >=5x micro-batching speedup, got {speedup:.1f}x"
