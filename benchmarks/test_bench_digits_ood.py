"""E9 — MNIST-scale classification workload with per-class monitors.

The prior-work baselines the paper builds on (Cheng et al. DATE'19,
Henzinger et al. ECAI'20) monitor classification networks on MNIST/GTSRB with
one abstraction per predicted class.  This benchmark reproduces that setup on
the synthetic-digits workload: per-class min-max and Boolean monitors, in-ODD
false positives measured on jittered held-out digits, detection measured on
never-seen glyph shapes and on corrupted digits, for both the standard and
robust constructions.
"""

import pytest

from repro.data.scenarios import sensor_noise_scenario
from repro.data.synthetic_digits import generate_novel_glyphs
from repro.eval.metrics import score_monitor
from repro.eval.reporting import format_rate, format_table
from repro.monitors.builder import ClassConditionalMonitor, MonitorBuilder
from repro.monitors.perturbation import PerturbationSpec

DIGITS_DELTA = 0.005


@pytest.fixture(scope="module")
def ood_sets(digits_workload):
    glyphs = generate_novel_glyphs(80, seed=5)
    corrupted = sensor_noise_scenario(digits_workload.in_odd_eval, noise_std=0.3, seed=6)
    return {"novel_glyphs": glyphs.inputs, "sensor_noise": corrupted.inputs}


def _score(name, monitor, digits_workload, ood_sets):
    in_odd = monitor.warn_batch(digits_workload.in_odd_eval.inputs)
    scenarios = {key: monitor.warn_batch(inputs) for key, inputs in ood_sets.items()}
    return score_monitor(name, in_odd, scenarios)


@pytest.mark.benchmark(group="E9-digits-ood")
@pytest.mark.parametrize("family, options", [
    ("minmax", {}),
    ("boolean", {"thresholds": "mean"}),
])
def test_per_class_monitors_on_digits(
    benchmark, digits_workload, digits_layer, ood_sets, family, options
):
    network = digits_workload.network

    def fit_both():
        standard = ClassConditionalMonitor(
            MonitorBuilder(family, digits_layer, **options), num_classes=5
        )
        standard.fit(network, digits_workload.train.inputs, labels=digits_workload.train.targets)
        robust = ClassConditionalMonitor(
            MonitorBuilder(
                family,
                digits_layer,
                perturbation=PerturbationSpec(delta=DIGITS_DELTA),
                **options,
            ),
            num_classes=5,
        )
        robust.fit(network, digits_workload.train.inputs, labels=digits_workload.train.targets)
        return standard, robust

    standard, robust = benchmark(fit_both)
    standard_score = _score("standard", standard, digits_workload, ood_sets)
    robust_score = _score("robust", robust, digits_workload, ood_sets)
    print()
    print(
        format_table(
            ["monitor", "in-ODD FP", "novel glyphs", "sensor noise"],
            [
                [
                    f"standard {family}",
                    format_rate(standard_score.false_positive_rate),
                    format_rate(standard_score.detection_rates["novel_glyphs"]),
                    format_rate(standard_score.detection_rates["sensor_noise"]),
                ],
                [
                    f"robust {family}",
                    format_rate(robust_score.false_positive_rate),
                    format_rate(robust_score.detection_rates["novel_glyphs"]),
                    format_rate(robust_score.detection_rates["sensor_noise"]),
                ],
            ],
            title=f"E9: per-class {family} monitors on the digits workload",
        )
    )
    assert robust_score.false_positive_rate <= standard_score.false_positive_rate
    # Out-of-distribution glyphs are detected more often than in-ODD digits warn.
    assert (
        standard_score.detection_rates["novel_glyphs"]
        >= standard_score.false_positive_rate
    )


@pytest.mark.benchmark(group="E9-digits-ood")
def test_classifier_quality_context(benchmark, digits_workload):
    """Report the classifier accuracy the monitors sit on top of."""
    from repro.nn.training import accuracy

    network = digits_workload.network

    def evaluate():
        return accuracy(
            network, digits_workload.in_odd_eval.inputs, digits_workload.in_odd_eval.targets
        )

    test_accuracy = benchmark(evaluate)
    print(f"\nE9: digit classifier accuracy on jittered held-out data: {test_accuracy:.3f}")
    assert test_accuracy > 0.5
