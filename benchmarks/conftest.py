"""Shared workloads for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md (E1–E9).  The
workloads are built once per session: a trained track/waypoint regressor and
a trained synthetic-digit classifier, each with in-ODD evaluation data
(held-out scenes plus Δ-perturbed training scenes) and the out-of-ODD
scenario suites of the paper.

Benchmarks print the paper-style result tables; run with ``-s`` to see them,
e.g. ``pytest benchmarks/ -m benchmark -s``.  Every benchmark is marked both
``benchmark`` and ``slow``, so the default tier-1 run (``-m "not slow"``)
skips them; select them explicitly with ``-m benchmark``.

Setting ``REPRO_BENCH_QUICK=1`` shrinks the session workloads (fewer samples
and epochs) for a fast CI smoke run, typically combined with
``--benchmark-disable`` so each benchmark body executes exactly once.

Perf-regression gate
--------------------
Benchmarks that should be guarded against regressions record wall times into
the session-scoped :class:`BenchRecorder` (``bench_record`` fixture).  At
session end the recorder writes a ``BENCH_<date>.json`` summary (path
overridable via ``REPRO_BENCH_JSON``) containing the recorded timings plus a
``_calibration`` entry — a fixed numpy workload timed on the same machine, so
the gate (``benchmarks/perf_gate.py``) can compare machine-normalised ratios
against the committed ``benchmarks/bench_baseline.json`` instead of raw
seconds.
"""

from __future__ import annotations

import datetime
import json
import os
import time
from typing import Callable, Dict

import numpy as np
import pytest

from repro.core.pipeline import (
    MonitoringWorkload,
    build_digits_workload,
    build_track_workload,
    default_monitored_layer,
)
from repro.data.perturbations import perturb_dataset_inputs
from repro.eval.experiments import MonitorExperiment

#: Quick-mode switch for CI smoke runs.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def pytest_collection_modifyitems(items):
    # Every test here already carries @pytest.mark.benchmark(...); the extra
    # ``slow`` marker keeps them out of the default ``-m "not slow"`` run.
    for item in items:
        item.add_marker(pytest.mark.slow)


class BenchRecorder:
    """Collects named wall times for the perf-regression gate.

    ``measure`` runs a callable ``repeats`` times and records the *minimum*
    wall time (the standard low-noise estimator) under ``name``; the
    callable's last return value is handed back so benchmark bodies can keep
    asserting on results.  The first ``measure`` call also times a fixed
    numpy calibration workload, stored as ``_calibration``, which the gate
    uses to normalise away machine-speed differences.
    """

    CALIBRATION_KEY = "_calibration"

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}
        self.attributes: Dict[str, Dict[str, object]] = {}

    def _calibrate(self) -> None:
        if self.CALIBRATION_KEY in self.timings:
            return
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(256, 256))
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            accumulator = matrix
            for _ in range(8):
                accumulator = np.tanh(accumulator @ matrix * 1e-3)
            float(accumulator.sum())
            best = min(best, time.perf_counter() - start)
        self.timings[self.CALIBRATION_KEY] = best

    def measure(
        self,
        name: str,
        workload: Callable[[], object],
        repeats: int = 3,
        inner: int = 1,
    ):
        """Record ``min over repeats`` of the mean time of ``inner`` calls.

        Sub-millisecond workloads need ``inner > 1`` so that one timing
        sample is large relative to timer resolution and scheduler noise —
        otherwise the 25% regression threshold of the perf gate trips on
        jitter.
        """
        self._calibrate()
        best = float("inf")
        result = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for _ in range(max(1, inner)):
                result = workload()
            best = min(best, (time.perf_counter() - start) / max(1, inner))
        self.timings[name] = best
        return result

    def record(self, name: str, seconds: float) -> None:
        """Record an externally measured timing (e.g. a derived ratio)."""
        self._calibrate()
        self.timings[name] = float(seconds)

    def annotate(self, name: str, **attrs: object) -> None:
        """Attach JSON-serialisable attributes to a recorded timing.

        Used for context the gate should *see* but not compare — e.g. which
        matcher back-end actually executed a timing (``compiled`` degrades
        to ``numpy`` when numba is absent, and the entry must say so).
        """
        self.attributes.setdefault(name, {}).update(attrs)

    def summary(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "quick": QUICK,
            "timings": dict(sorted(self.timings.items())),
        }
        if self.attributes:
            summary["attributes"] = dict(sorted(self.attributes.items()))
        return summary


_RECORDER = BenchRecorder()


@pytest.fixture(scope="session")
def bench_record() -> BenchRecorder:
    return _RECORDER


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDER.timings:
        return
    date = datetime.date.today().isoformat()
    path = os.environ.get("REPRO_BENCH_JSON", f"BENCH_{date}.json")
    with open(path, "w") as handle:
        json.dump(_RECORDER.summary(), handle, indent=2, sort_keys=True)
        handle.write("\n")


#: Perturbation budget used throughout the track experiments.  Matched to the
#: aleatory jitter of the in-ODD evaluation data (see DESIGN.md E1).
TRACK_DELTA = 0.002

#: Perturbation budget for the digits workload.
DIGITS_DELTA = 0.005


@pytest.fixture(scope="session")
def track_workload() -> MonitoringWorkload:
    if QUICK:
        return build_track_workload(num_samples=200, epochs=5, seed=100)
    return build_track_workload(num_samples=360, epochs=10, seed=100)


@pytest.fixture(scope="session")
def track_layer(track_workload) -> int:
    return default_monitored_layer(track_workload.network)


@pytest.fixture(scope="session")
def track_experiment(track_workload) -> MonitorExperiment:
    """E1/E2 evaluation sets: Δ-perturbed training scenes + jittered held-out scenes."""
    rng = np.random.default_rng(0)
    perturbed_training = perturb_dataset_inputs(
        track_workload.train.inputs, TRACK_DELTA, rng=rng
    )
    in_odd = np.vstack([perturbed_training, track_workload.in_odd_eval.inputs])
    return MonitorExperiment(
        track_workload.network,
        track_workload.train.inputs,
        in_odd,
        {name: data.inputs for name, data in track_workload.out_of_odd_eval.items()},
    )


@pytest.fixture(scope="session")
def digits_workload() -> MonitoringWorkload:
    if QUICK:
        return build_digits_workload(num_samples=250, num_classes=5, epochs=5, seed=200)
    return build_digits_workload(num_samples=400, num_classes=5, epochs=10, seed=200)


@pytest.fixture(scope="session")
def digits_layer(digits_workload) -> int:
    return default_monitored_layer(digits_workload.network)
