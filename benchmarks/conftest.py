"""Shared workloads for the benchmark harness.

Each benchmark module reproduces one experiment from DESIGN.md (E1–E9).  The
workloads are built once per session: a trained track/waypoint regressor and
a trained synthetic-digit classifier, each with in-ODD evaluation data
(held-out scenes plus Δ-perturbed training scenes) and the out-of-ODD
scenario suites of the paper.

Benchmarks print the paper-style result tables; run with ``-s`` to see them,
e.g. ``pytest benchmarks/ -m benchmark -s``.  Every benchmark is marked both
``benchmark`` and ``slow``, so the default tier-1 run (``-m "not slow"``)
skips them; select them explicitly with ``-m benchmark``.

Setting ``REPRO_BENCH_QUICK=1`` shrinks the session workloads (fewer samples
and epochs) for a fast CI smoke run, typically combined with
``--benchmark-disable`` so each benchmark body executes exactly once.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

#: Quick-mode switch for CI smoke runs.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def pytest_collection_modifyitems(items):
    # Every test here already carries @pytest.mark.benchmark(...); the extra
    # ``slow`` marker keeps them out of the default ``-m "not slow"`` run.
    for item in items:
        item.add_marker(pytest.mark.slow)

from repro.core.pipeline import (
    MonitoringWorkload,
    build_digits_workload,
    build_track_workload,
    default_monitored_layer,
)
from repro.data.perturbations import perturb_dataset_inputs
from repro.eval.experiments import MonitorExperiment

#: Perturbation budget used throughout the track experiments.  Matched to the
#: aleatory jitter of the in-ODD evaluation data (see DESIGN.md E1).
TRACK_DELTA = 0.002

#: Perturbation budget for the digits workload.
DIGITS_DELTA = 0.005


@pytest.fixture(scope="session")
def track_workload() -> MonitoringWorkload:
    if QUICK:
        return build_track_workload(num_samples=200, epochs=5, seed=100)
    return build_track_workload(num_samples=360, epochs=10, seed=100)


@pytest.fixture(scope="session")
def track_layer(track_workload) -> int:
    return default_monitored_layer(track_workload.network)


@pytest.fixture(scope="session")
def track_experiment(track_workload) -> MonitorExperiment:
    """E1/E2 evaluation sets: Δ-perturbed training scenes + jittered held-out scenes."""
    rng = np.random.default_rng(0)
    perturbed_training = perturb_dataset_inputs(
        track_workload.train.inputs, TRACK_DELTA, rng=rng
    )
    in_odd = np.vstack([perturbed_training, track_workload.in_odd_eval.inputs])
    return MonitorExperiment(
        track_workload.network,
        track_workload.train.inputs,
        in_odd,
        {name: data.inputs for name, data in track_workload.out_of_odd_eval.items()},
    )


@pytest.fixture(scope="session")
def digits_workload() -> MonitoringWorkload:
    if QUICK:
        return build_digits_workload(num_samples=250, num_classes=5, epochs=5, seed=200)
    return build_digits_workload(num_samples=400, num_classes=5, epochs=10, seed=200)


@pytest.fixture(scope="session")
def digits_layer(digits_workload) -> int:
    return default_monitored_layer(digits_workload.network)
