"""E1 — false-positive reduction of the robust monitor (Section IV headline).

Paper: the standard monitor shows 0.62% false positives inside the ODD; the
robust construction reduces this to 0.125% (an ~80% reduction).  Here the
in-ODD evaluation set contains Δ-perturbed training scenes plus jittered
held-out scenes, so the standard monitor accumulates false positives from the
aleatory perturbation while Lemma 1 forces the robust monitor's rate towards
the held-out share only.  The benchmark times robust monitor construction
(the symbolic-propagation-heavy step) and prints the comparison table.
"""

import pytest

from repro.eval.reporting import format_rate, format_table
from repro.monitors.boolean import BooleanPatternMonitor, RobustBooleanPatternMonitor
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec

#: Perturbation budget matched to the in-ODD aleatory jitter (see conftest).
TRACK_DELTA = 0.002


def _compare(experiment, network, layer, standard, robust):
    result = experiment.run({"standard": standard, "robust": robust})
    standard_score = result.score("standard")
    robust_score = result.score("robust")
    reduction = result.false_positive_reduction("standard", "robust")
    return standard_score, robust_score, reduction


@pytest.mark.benchmark(group="E1-false-positive-reduction")
def test_minmax_false_positive_reduction(benchmark, track_experiment, track_workload, track_layer):
    network = track_workload.network
    spec = PerturbationSpec(delta=TRACK_DELTA, layer=0, method="box")

    def build_robust():
        return RobustMinMaxMonitor(network, track_layer, spec).fit(
            track_workload.train.inputs
        )

    robust = benchmark(build_robust)
    standard = MinMaxMonitor(network, track_layer).fit(track_workload.train.inputs)
    standard_score, robust_score, reduction = _compare(
        track_experiment, network, track_layer, standard, robust
    )
    print()
    print(
        format_table(
            ["monitor", "in-ODD false positives", "mean detection"],
            [
                ["standard min-max", format_rate(standard_score.false_positive_rate),
                 format_rate(standard_score.mean_detection_rate)],
                ["robust min-max", format_rate(robust_score.false_positive_rate),
                 format_rate(robust_score.mean_detection_rate)],
            ],
            title=f"E1 (min-max): FP reduction = {reduction:.1%} "
            "(paper: 0.62% -> 0.125%, ~80%)",
        )
    )
    assert robust_score.false_positive_rate <= standard_score.false_positive_rate
    # The paper reports an ~80% reduction; require a substantial one here.
    if standard_score.false_positive_rate > 0:
        assert reduction >= 0.5


@pytest.mark.benchmark(group="E1-false-positive-reduction")
def test_boolean_false_positive_reduction(benchmark, track_experiment, track_workload, track_layer):
    network = track_workload.network
    spec = PerturbationSpec(delta=TRACK_DELTA, layer=0, method="box")

    def build_robust():
        return RobustBooleanPatternMonitor(
            network, track_layer, spec, thresholds="mean"
        ).fit(track_workload.train.inputs)

    robust = benchmark(build_robust)
    standard = BooleanPatternMonitor(network, track_layer, thresholds="mean").fit(
        track_workload.train.inputs
    )
    standard_score, robust_score, reduction = _compare(
        track_experiment, network, track_layer, standard, robust
    )
    print()
    print(
        format_table(
            ["monitor", "in-ODD false positives", "mean detection"],
            [
                ["standard boolean", format_rate(standard_score.false_positive_rate),
                 format_rate(standard_score.mean_detection_rate)],
                ["robust boolean", format_rate(robust_score.false_positive_rate),
                 format_rate(robust_score.mean_detection_rate)],
            ],
            title=f"E1 (boolean): FP reduction = {reduction:.1%}",
        )
    )
    assert robust_score.false_positive_rate <= standard_score.false_positive_rate
