"""E4 — Figure 2: the laboratory track deployment.

The paper deploys a visual-waypoint DNN on a race track and engineers
abnormal scenarios — dark conditions, a construction site, ice — that the
monitor should flag while staying quiet in the ODD.  This benchmark runs the
full :class:`~repro.core.pipeline.MonitorPipeline` (standard vs. robust) for
each monitor family on the synthetic track workload and prints the scenario
tables, timing the complete pipeline run.
"""

import pytest

from repro.core.pipeline import MonitorPipeline
from repro.monitors.perturbation import PerturbationSpec

TRACK_DELTA = 0.002


@pytest.mark.benchmark(group="E4-track-scenarios")
@pytest.mark.parametrize("family, options", [
    ("minmax", {}),
    ("boolean", {"thresholds": "mean"}),
    ("interval", {"num_cuts": 3, "cut_strategy": "percentile"}),
])
def test_track_pipeline_per_family(benchmark, track_workload, family, options):
    pipeline = MonitorPipeline(
        track_workload,
        family=family,
        perturbation=PerturbationSpec(delta=TRACK_DELTA, layer=0, method="box"),
        **options,
    )

    result = benchmark(pipeline.run)
    print()
    print(result.format(title=f"E4: track scenarios — {family} monitors"))
    standard = result.score("standard")
    robust = result.score("robust")
    # The Figure 2 claim: warnings in the engineered scenarios, quiet in the ODD.
    assert robust.false_positive_rate <= standard.false_positive_rate
    assert standard.mean_detection_rate > standard.false_positive_rate
    assert robust.mean_detection_rate >= robust.false_positive_rate
