"""CI perf-regression gate over the recorded benchmark timings.

Compares a freshly produced ``BENCH_<date>.json`` (written by the
``bench_record`` fixture in ``benchmarks/conftest.py``) against the
committed ``benchmarks/bench_baseline.json`` and fails when any tracked
benchmark regressed by more than the threshold (default 25%).

Raw wall times are not comparable across machines, so both files carry a
``_calibration`` entry — a fixed numpy workload timed in the same session —
and the gate compares *calibration-normalised* ratios::

    normalised = timings[name] / timings["_calibration"]
    regression = normalised_current / normalised_baseline - 1

Usage::

    python benchmarks/perf_gate.py BENCH_2026-07-29.json
    python benchmarks/perf_gate.py BENCH_2026-07-29.json --threshold 0.25
    python benchmarks/perf_gate.py BENCH_2026-07-29.json --update-baseline
    python benchmarks/perf_gate.py BENCH_2026-07-29.json --step-summary "$GITHUB_STEP_SUMMARY"

``--step-summary`` additionally appends the comparison as a Markdown table
to the given file — CI points it at ``$GITHUB_STEP_SUMMARY`` so a
regression is readable from the job page without downloading artifacts.

``--update-baseline`` rewrites the committed baseline from the current
summary (run after an intentional perf change, commit the result).
Benchmarks present in only one of the two files are reported but do not
fail the gate, so adding or retiring a benchmark does not need a lockstep
baseline update.

Calibration cancels uniform machine-speed differences but not every
microarchitectural one (BLAS build, per-call overhead), so the committed
baseline should be recorded on the machine class that runs the gate: after
the first CI run (or a runner change), download the job's uploaded
``bench_current.json`` artifact and commit it via ``--update-baseline``.
Setting ``REPRO_PERF_GATE_WARN_ONLY=1`` reports regressions without failing
— the escape hatch for exactly that re-baselining window.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

CALIBRATION_KEY = "_calibration"
DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__), "bench_baseline.json")


def load_summary(path: str) -> dict:
    with open(path) as handle:
        summary = json.load(handle)
    timings = summary.get("timings", {})
    if CALIBRATION_KEY not in timings:
        raise SystemExit(f"{path}: missing '{CALIBRATION_KEY}' entry")
    if timings[CALIBRATION_KEY] <= 0:
        raise SystemExit(f"{path}: non-positive calibration time")
    return summary


def normalised(timings: dict) -> dict:
    """Calibration-normalised tracked timings.

    Names starting with ``_`` (the calibration entry itself and any
    informational timings too small/noisy to gate on) are excluded.
    """
    calibration = timings[CALIBRATION_KEY]
    return {
        name: seconds / calibration
        for name, seconds in timings.items()
        if not name.startswith("_")
    }


def write_step_summary(
    path: str,
    rows: list,
    only_base: list,
    only_curr: list,
    failures: list,
    threshold: float,
) -> None:
    """Append the gate's comparison as a Markdown table to ``path``.

    ``rows`` holds ``(name, baseline_ratio, current_ratio, change)`` tuples
    for benchmarks present in both summaries.
    """
    lines = ["### Perf-regression gate", ""]
    if rows:
        lines += [
            "| benchmark | baseline | current | change |",
            "| --- | ---: | ---: | ---: |",
        ]
        failed_names = {name for name, _ in failures}
        for name, base, curr, change in rows:
            flag = " ⚠️ **regression**" if name in failed_names else ""
            lines.append(f"| `{name}` | {base:.3f} | {curr:.3f} | {change:+.1%}{flag} |")
        lines.append("")
    for name in only_base:
        lines.append(f"- `{name}` retired (baseline only)")
    for name in only_curr:
        lines.append(f"- `{name}` new (no baseline yet)")
    if failures:
        lines.append(
            f"**FAIL** — {len(failures)} benchmark(s) regressed more "
            f"than {threshold:.0%} vs baseline."
        )
    else:
        lines.append(f"**OK** — no tracked benchmark regressed more than {threshold:.0%}.")
    lines.append("")
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="BENCH_<date>.json produced by this run")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated slowdown fraction (0.25 = fail above +25%%)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current summary and exit",
    )
    parser.add_argument(
        "--step-summary",
        metavar="PATH",
        help="also append the comparison as a Markdown table to PATH "
        "(CI passes $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    current = load_summary(args.current)
    if args.update_baseline:
        with open(args.baseline, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = load_summary(args.baseline)
    if current.get("quick") != baseline.get("quick"):
        print(
            "warning: quick-mode flag differs between baseline "
            f"({baseline.get('quick')}) and current ({current.get('quick')}); "
            "ratios may not be comparable"
        )

    base_ratios = normalised(baseline["timings"])
    curr_ratios = normalised(current["timings"])
    tracked = sorted(set(base_ratios) & set(curr_ratios))
    only_base = sorted(set(base_ratios) - set(curr_ratios))
    only_curr = sorted(set(curr_ratios) - set(base_ratios))

    if not tracked:
        raise SystemExit("no benchmark appears in both baseline and current summary")

    failures = []
    rows = []
    print(f"{'benchmark':<40} {'baseline':>10} {'current':>10} {'change':>8}")
    for name in tracked:
        change = curr_ratios[name] / base_ratios[name] - 1.0
        flag = ""
        if change > args.threshold:
            failures.append((name, change))
            flag = "  << REGRESSION"
        rows.append((name, base_ratios[name], curr_ratios[name], change))
        print(
            f"{name:<40} {base_ratios[name]:>10.3f} {curr_ratios[name]:>10.3f} "
            f"{change:>+7.1%}{flag}"
        )
    for name in only_base:
        print(f"{name:<40} (retired: baseline only)")
    for name in only_curr:
        print(f"{name:<40} (new: no baseline yet)")

    if args.step_summary:
        write_step_summary(
            args.step_summary, rows, only_base, only_curr, failures, args.threshold
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs baseline:"
        )
        for name, change in failures:
            print(f"  {name}: {change:+.1%}")
        if os.environ.get("REPRO_PERF_GATE_WARN_ONLY", "") == "1":
            print(
                "REPRO_PERF_GATE_WARN_ONLY=1: reporting only — re-baseline "
                "from this run's summary once the machine class is settled"
            )
            return 0
        return 1
    print(f"\nOK: no tracked benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
