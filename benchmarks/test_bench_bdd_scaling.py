"""E6 — BDD storage cost: ``word2set`` does not blow up.

Footnote 2 of the paper argues that translating ternary words with don't-care
symbols into sets of binary words costs nothing when the sets are stored in a
BDD (a don't-care bit is simply an unconstrained variable).  This benchmark
measures BDD node counts and insertion throughput while the monitored layer
widens and while the fraction of don't-care bits grows, and verifies that the
node count scales linearly in the number of constrained bits — never
exponentially in the number of don't-cares.
"""

import numpy as np
import pytest

from repro.bdd.patterns import DONT_CARE, PatternSet
from repro.eval.reporting import format_table

NUM_WORDS = 150


def _random_ternary_words(width, dont_care_fraction, rng, count=NUM_WORDS):
    words = []
    for _ in range(count):
        word = []
        for _ in range(width):
            if rng.random() < dont_care_fraction:
                word.append(DONT_CARE)
            else:
                word.append(int(rng.random() < 0.5))
        words.append(word)
    return words


@pytest.mark.benchmark(group="E6-bdd-scaling")
@pytest.mark.parametrize("width", [16, 32, 64])
def test_bdd_size_scales_with_layer_width(benchmark, width):
    rng = np.random.default_rng(width)
    words = _random_ternary_words(width, dont_care_fraction=0.2, rng=rng)

    def build():
        patterns = PatternSet(width, bits_per_position=1)
        for word in words:
            patterns.add_ternary_word(word)
        return patterns

    patterns = benchmark(build)
    nodes = patterns.dag_size()
    print(
        f"\nE6: width={width}: {NUM_WORDS} ternary words -> {nodes} BDD nodes "
        f"({patterns.cardinality()} binary words represented)"
    )
    # Linear-ish growth: far below the number of represented binary words.
    assert nodes <= NUM_WORDS * width
    assert patterns.cardinality() >= NUM_WORDS * 0.5


@pytest.mark.benchmark(group="E6-bdd-scaling")
def test_dont_care_fraction_does_not_explode_bdd(benchmark):
    """More don't-cares mean exponentially more represented words but not more nodes."""
    width = 32
    rng = np.random.default_rng(7)
    fractions = [0.0, 0.2, 0.5, 0.8]

    def build_all():
        results = []
        for fraction in fractions:
            patterns = PatternSet(width, bits_per_position=1)
            for word in _random_ternary_words(width, fraction, rng, count=80):
                patterns.add_ternary_word(word)
            results.append((fraction, patterns.dag_size(), patterns.cardinality()))
        return results

    results = benchmark(build_all)
    print()
    print(
        format_table(
            ["don't-care fraction", "BDD nodes", "represented binary words"],
            [[f"{fraction:.1f}", nodes, count] for fraction, nodes, count in results],
            title="E6: word2set never causes exponential blow-up",
        )
    )
    node_counts = [nodes for _, nodes, _ in results]
    word_counts = [count for _, _, count in results]
    # The represented set explodes by orders of magnitude with the don't-care
    # fraction while the storage cost per represented word collapses: that is
    # the footnote-2 claim.  (The absolute node count of a union of many
    # random cubes can still grow — the guarantee is per inserted word.)
    assert word_counts[-1] > word_counts[0] * 1000
    cost_per_word_dense = node_counts[0] / word_counts[0]
    cost_per_word_sparse = node_counts[-1] / word_counts[-1]
    assert cost_per_word_sparse < cost_per_word_dense / 1000


@pytest.mark.benchmark(group="E6-bdd-scaling")
def test_membership_query_throughput(benchmark):
    """Operational-time membership queries (the monitor's hot path)."""
    width = 48
    rng = np.random.default_rng(11)
    patterns = PatternSet(width, bits_per_position=1)
    for word in _random_ternary_words(width, 0.3, rng, count=200):
        patterns.add_ternary_word(word)
    probes = [(rng.random(width) < 0.5).astype(int).tolist() for _ in range(300)]

    def query_all():
        return sum(1 for probe in probes if patterns.contains(probe))

    hits = benchmark(query_all)
    assert 0 <= hits <= len(probes)
