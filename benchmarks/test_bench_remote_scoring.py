"""E13 — out-of-process socket serving vs in-process streaming.

The worker pool exists to take scoring past the single-process GIL: N
spawned workers, each with a private engine, fed over shared memory behind
a TCP front-end.  This benchmark replays one frame stream through

1. the in-process streaming scorer (the E11 path, informational here), and
2. the socket server backed by pools of 1, 2 and 4 workers,

asserts the verdicts of every path are identical to the offline
``warn_batch``, records the single-worker remote wall time into the CI
perf-regression gate (multi-worker wall times depend on the runner's core
count, so they are informational underscore keys), and — on machines with
at least 4 cores, i.e. the CI perf runners — pins the ISSUE acceptance
bar: ≥1.5× throughput at 4 workers over 1.
"""

import os
import tempfile

import numpy as np
import pytest

from repro.eval import format_scaling_report, measure_remote_throughput
from repro.eval.service_report import measure_streaming_throughput
from repro.monitors.boolean import BooleanPatternMonitor
from repro.monitors.interval import IntervalPatternMonitor
from repro.monitors.minmax import MinMaxMonitor
from repro.nn.network import mlp
from repro.service import BatchPolicy, StreamingScorer
from repro.serving import ScoringClient, ScoringServer, WorkerPool, save_deployment
from repro.serving.artifacts import DeploymentBundle

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

#: Deliberately heavier than the track workload: the pool's win is compute
#: parallelism, so per-batch scoring work must dominate the per-batch
#: dispatch cost.  Empirically a wide network with boolean + interval
#: pattern monitors on every hidden layer costs ~6-8 ms of scoring per
#: 32-frame batch, versus well under 1 ms of pool dispatch — enough for
#: worker scaling to express itself on a multi-core runner.
INPUT_DIM = 32
HIDDEN_DIMS = (512, 512, 256)
NUM_CUTS = 5
NUM_FIT = 768 if QUICK else 1024
NUM_FRAMES = 192 if QUICK else 576
MAX_BATCH = 32
BURST = 32
WORKER_COUNTS = (1, 2, 4)
SCALING_BAR = 1.5
FUTURE_TIMEOUT = 120.0


@pytest.fixture(scope="module")
def remote_workload():
    """A synthetic heavy deployment: network, fitted monitors, saved bundle."""
    rng = np.random.default_rng(13)
    network = mlp(
        input_dim=INPUT_DIM,
        hidden_dims=list(HIDDEN_DIMS),
        output_dim=8,
        activation="relu",
        seed=13,
    )
    fit_inputs = rng.normal(size=(NUM_FIT, INPUT_DIM))
    # Monitor every hidden layer, not just the last one: the per-batch
    # matching cost is what the workers parallelise, so the workload stacks
    # boolean + interval pattern monitors per layer plus a final minmax.
    final_layer = 2 * len(HIDDEN_DIMS)  # last hidden activation layer
    monitors = {"minmax": MinMaxMonitor(network, final_layer).fit(fit_inputs)}
    for depth in range(1, len(HIDDEN_DIMS) + 1):
        layer = 2 * depth
        monitors[f"boolean_l{depth}"] = BooleanPatternMonitor(
            network, layer, thresholds="mean"
        ).fit(fit_inputs)
        monitors[f"interval_l{depth}"] = IntervalPatternMonitor(
            network, layer, num_cuts=NUM_CUTS
        ).fit(fit_inputs)
    directory = tempfile.mkdtemp(prefix="repro-bench-deploy-")
    save_deployment(directory, network, monitors)
    frames = rng.normal(size=(NUM_FRAMES, INPUT_DIM))
    offline = {name: monitor.warn_batch(frames) for name, monitor in monitors.items()}
    return {
        "network": network,
        "monitors": monitors,
        "bundle": DeploymentBundle(directory),
        "frames": frames,
        "offline": offline,
    }


def _assert_parity(warns, offline):
    for name, expected in offline.items():
        np.testing.assert_array_equal(np.asarray(warns[name]), expected)


def _measure_remote(bundle, frames, offline, workers, repeats):
    """Boot a pool + server, replay the stream, return the best metrics."""
    pool = WorkerPool(
        bundle,
        num_workers=workers,
        policy=BatchPolicy(max_batch=MAX_BATCH, max_latency=0.002),
    )
    pool.start()
    server = ScoringServer(pool, owns_scorer=True).start()
    best = None
    try:
        with ScoringClient(server.address, timeout=FUTURE_TIMEOUT) as client:
            # Warm-up pass doubles as the verdict-parity assertion: remote
            # verdicts must be bit-identical to the offline warn_batch.
            _assert_parity(client.score(frames), offline)
            for _ in range(repeats):
                metrics = measure_remote_throughput(client, frames, burst_size=BURST)
                if best is None or metrics["wall_time_s"] < best["wall_time_s"]:
                    best = metrics
    finally:
        server.close(drain=True, timeout=FUTURE_TIMEOUT)
    return best


@pytest.mark.benchmark(group="E13-remote-scoring")
def test_remote_scoring_scaling(bench_record, remote_workload):
    frames = remote_workload["frames"]
    offline = remote_workload["offline"]
    bundle = remote_workload["bundle"]
    repeats = 2 if QUICK else 3
    measurements = {}

    # In-process streaming reference (E11 gates this path; informational).
    policy = BatchPolicy(max_batch=MAX_BATCH, max_latency=0.002)
    with StreamingScorer(remote_workload["network"], policy=policy) as scorer:
        for name, monitor in remote_workload["monitors"].items():
            scorer.register(name, monitor)
        best = None
        for _ in range(repeats):
            metrics = measure_streaming_throughput(scorer, frames, burst_size=BURST)
            if best is None or metrics["wall_time_s"] < best["wall_time_s"]:
                best = metrics
    measurements["in-process"] = best
    bench_record.record(f"_inproc_streaming_n{NUM_FRAMES}", best["wall_time_s"])

    for workers in WORKER_COUNTS:
        metrics = _measure_remote(bundle, frames, offline, workers, repeats)
        measurements[f"remote w={workers}"] = metrics
        if workers == 1:
            # Single-worker remote wall time is the gated key: one scoring
            # process is calibration-normalisable across machines, pool
            # scaling is not (it depends on the runner's core count).
            bench_record.record(f"remote_socket_w1_n{NUM_FRAMES}", metrics["wall_time_s"])
        else:
            bench_record.record(
                f"_remote_socket_w{workers}_n{NUM_FRAMES}", metrics["wall_time_s"]
            )

    scaling = (
        measurements["remote w=4"]["frames_per_second"]
        / measurements["remote w=1"]["frames_per_second"]
    )
    bench_record.record("_remote_scaling_w4_over_w1", scaling)
    bench_record.annotate(
        f"remote_socket_w1_n{NUM_FRAMES}",
        cpu_count=os.cpu_count(),
        scaling_w4_over_w1=round(scaling, 3),
    )

    print(f"\nE13: remote socket scoring, {NUM_FRAMES} frames x {INPUT_DIM} features")
    print(
        format_scaling_report(
            measurements,
            baseline="remote w=1",
            title="E13 — in-process vs remote worker pool",
        )
    )
    print(f"scaling w=4 over w=1: {scaling:.2f}x (cpus={os.cpu_count()})")

    # ISSUE acceptance bar, enforced where the hardware can express it (the
    # CI perf runners have 4 vCPUs); a 1-core container still runs the
    # benchmark and records the timings, it just cannot scale.
    if (os.cpu_count() or 1) >= 4:
        assert scaling >= SCALING_BAR, (
            f"expected >={SCALING_BAR}x throughput at 4 workers vs 1, "
            f"got {scaling:.2f}x"
        )
