"""E3 — Figure 1: the robust interval-code encoding.

Figure 1 of the paper illustrates how a sound neuron bound ``[l_j, u_j]``
relative to cut points ``c_j1 < c_j2 < c_j3`` maps to a *set* of 2-bit codes.
This benchmark exhaustively enumerates the ten cases of the paper's table,
cross-checks them against the general contiguous-range encoding used by the
library, and times the vectorised encoding of a full layer (the per-sample
cost of robust interval monitor construction after bound propagation).
"""

import numpy as np
import pytest

from repro.eval.reporting import format_table
from repro.monitors.encoding import (
    code_sets_of_bounds,
    paper_code_2bit,
    paper_robust_code_set_2bit,
)

C1, C2, C3 = -1.0, 0.0, 1.0

#: Representative (l, u) pairs for the ten rows of Figure 1.
FIGURE1_CASES = [
    ("l > c3", 1.5, 2.0, {3}),
    ("c3 >= u >= l >= c2", 0.2, 0.8, {2}),
    ("c2 > u >= l > c1", -0.8, -0.2, {1}),
    ("c1 >= u", -2.0, -1.5, {0}),
    ("straddles c1", -1.5, -0.5, {0, 1}),
    ("straddles c2", -0.5, 0.5, {1, 2}),
    ("straddles c3", 0.5, 1.5, {2, 3}),
    ("c1 >= l, u in [c2, c3]", -1.5, 0.5, {0, 1, 2}),
    ("u > c3, l in (c1, c2)", -0.5, 1.5, {1, 2, 3}),
    ("spans all cuts", -1.5, 1.5, {0, 1, 2, 3}),
]


@pytest.mark.benchmark(group="E3-interval-encoding")
def test_figure1_case_table(benchmark):
    """Reproduce the Figure 1 case table and verify its soundness."""

    def evaluate_cases():
        rows = []
        for label, low, high, expected in FIGURE1_CASES:
            observed = paper_robust_code_set_2bit(low, high, C1, C2, C3)
            rows.append((label, low, high, sorted(observed), sorted(expected)))
        return rows

    rows = benchmark(evaluate_cases)
    print()
    print(
        format_table(
            ["case", "l", "u", "robust code set", "expected (Fig. 1)"],
            [
                [label, low, high, str(observed), str(expected)]
                for label, low, high, observed, expected in rows
            ],
            title="E3: Figure 1 robust 2-bit encoding cases",
        )
    )
    for label, low, high, observed, expected in rows:
        assert observed == expected, f"case '{label}' mismatch"
        # Soundness: every value in [l, u] has its standard code inside the set.
        for value in np.linspace(low, high, 17):
            assert paper_code_2bit(value, C1, C2, C3) in observed


@pytest.mark.benchmark(group="E3-interval-encoding")
def test_general_encoding_matches_paper_on_interiors(benchmark):
    """The library's contiguous-range encoding agrees with Figure 1 away from cut boundaries."""
    rng = np.random.default_rng(0)
    cuts = np.array([[C1, C2, C3]])

    def check_random_bounds():
        mismatches = 0
        for _ in range(500):
            low = float(rng.uniform(-2.5, 2.5))
            high = low + float(rng.uniform(0.0, 3.0))
            # Skip bounds that sit exactly on a cut (boundary conventions differ).
            if any(abs(x - c) < 1e-9 for x in (low, high) for c in (C1, C2, C3)):
                continue
            general = code_sets_of_bounds(np.array([low]), np.array([high]), cuts)[0]
            paper = paper_robust_code_set_2bit(low, high, C1, C2, C3)
            if set(general) != set(paper):
                mismatches += 1
        return mismatches

    mismatches = benchmark(check_random_bounds)
    print(f"\nE3: general-vs-paper encoding mismatches on 500 random bounds: {mismatches}")
    assert mismatches == 0


@pytest.mark.benchmark(group="E3-interval-encoding")
def test_layer_encoding_throughput(benchmark):
    """Vectorised robust encoding of a 64-neuron layer over 500 samples."""
    rng = np.random.default_rng(1)
    num_neurons = 64
    cut_points = np.sort(rng.normal(size=(num_neurons, 3)), axis=1)
    cut_points += np.arange(3)[None, :] * 1e-6  # enforce strict monotonicity
    lows = rng.normal(size=(500, num_neurons))
    highs = lows + rng.uniform(0.0, 1.0, size=(500, num_neurons))

    def encode_all():
        total_codes = 0
        for low, high in zip(lows, highs):
            sets = code_sets_of_bounds(low, high, cut_points)
            total_codes += sum(len(s) for s in sets)
        return total_codes

    total = benchmark(encode_all)
    assert total >= 500 * num_neurons
