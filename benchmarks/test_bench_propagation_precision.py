"""E7 — precision and cost of the bound-propagation back-ends.

Section III-B lists three ways to compute the perturbation estimate: boxed
abstraction (interval bound propagation), zonotopes and star sets, and the
paper's implementation uses boxes.  This benchmark compares the three
back-ends on the trained track network: average bound width at the monitored
layer (tighter is better) and construction time per training scene (cheaper
is better), plus the induced don't-care fraction of the robust Boolean
monitor — the knob that decides how much abstraction precision is lost.
"""

import numpy as np
import pytest

from repro.eval.reporting import format_table
from repro.monitors.boolean import RobustBooleanPatternMonitor
from repro.monitors.perturbation import PerturbationSpec, perturbation_estimate

TRACK_DELTA = 0.002
NUM_SCENES = 25


@pytest.mark.benchmark(group="E7-propagation-precision")
@pytest.mark.parametrize("method", ["box", "zonotope", "star"])
def test_bound_width_per_backend(benchmark, track_workload, track_layer, method):
    network = track_workload.network
    scenes = track_workload.train.inputs[:NUM_SCENES]
    spec = PerturbationSpec(delta=TRACK_DELTA, layer=0, method=method)

    def propagate_all():
        widths = []
        for scene in scenes:
            estimate = perturbation_estimate(network, scene, track_layer, spec)
            widths.append(estimate.width_sum())
        return float(np.mean(widths))

    mean_width = benchmark(propagate_all)
    print(f"\nE7: method={method}: mean bound width sum at layer {track_layer} = {mean_width:.4f}")
    assert mean_width > 0.0


@pytest.mark.benchmark(group="E7-propagation-precision")
def test_backend_comparison_table(benchmark, track_workload, track_layer):
    """Side-by-side width and don't-care comparison (zonotope/star vs. box)."""
    network = track_workload.network
    scenes = track_workload.train.inputs[:NUM_SCENES]

    def compare():
        rows = []
        for method in ("box", "zonotope", "star"):
            spec = PerturbationSpec(delta=TRACK_DELTA, layer=0, method=method)
            widths = [
                perturbation_estimate(network, scene, track_layer, spec).width_sum()
                for scene in scenes
            ]
            monitor = RobustBooleanPatternMonitor(
                network, track_layer, spec, thresholds="mean"
            ).fit(scenes)
            rows.append(
                {
                    "method": method,
                    "mean_width": float(np.mean(widths)),
                    "dont_care_fraction": monitor.dont_care_fraction,
                }
            )
        return rows

    rows = benchmark(compare)
    print()
    print(
        format_table(
            ["method", "mean bound width", "don't-care fraction"],
            [
                [r["method"], f"{r['mean_width']:.4f}", f"{r['dont_care_fraction']:.3f}"]
                for r in rows
            ],
            title="E7: bound-propagation back-end precision",
        )
    )
    by_method = {row["method"]: row for row in rows}
    # Zonotopes track correlations through the affine layers, so the final
    # bound is at least as tight as interval propagation on this network.
    assert by_method["zonotope"]["mean_width"] <= by_method["box"]["mean_width"] * 1.05
    assert by_method["star"]["mean_width"] <= by_method["box"]["mean_width"] * 1.05
