"""E2 — out-of-ODD detection rates stay useful under the robust construction.

Paper: switching to robust monitors reduces false positives by ~80% "while
the detection rate of ODD departures remains roughly the same".  This
benchmark prints the per-scenario (dark / construction site / ice) detection
table for the standard and robust min-max monitors and times the operational
warning path (the per-frame cost a deployed vehicle would pay).
"""

import numpy as np
import pytest

from repro.eval.reporting import format_rate, format_table
from repro.monitors.minmax import MinMaxMonitor, RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec

#: Perturbation budget matched to the in-ODD aleatory jitter (see conftest).
TRACK_DELTA = 0.002


@pytest.fixture(scope="module")
def fitted_monitors(track_workload, track_layer):
    network = track_workload.network
    standard = MinMaxMonitor(network, track_layer).fit(track_workload.train.inputs)
    robust = RobustMinMaxMonitor(
        network, track_layer, PerturbationSpec(delta=TRACK_DELTA)
    ).fit(track_workload.train.inputs)
    return standard, robust


@pytest.mark.benchmark(group="E2-detection-rate")
def test_detection_rates_per_scenario(benchmark, fitted_monitors, track_experiment):
    standard, robust = fitted_monitors

    def score_both():
        return (
            track_experiment.evaluate_monitor("standard", standard),
            track_experiment.evaluate_monitor("robust", robust),
        )

    standard_score, robust_score = benchmark(score_both)
    rows = []
    for scenario in sorted(standard_score.detection_rates):
        rows.append(
            [
                scenario,
                format_rate(standard_score.detection_rates[scenario]),
                format_rate(robust_score.detection_rates[scenario]),
            ]
        )
    rows.append(
        [
            "in-ODD false positives",
            format_rate(standard_score.false_positive_rate),
            format_rate(robust_score.false_positive_rate),
        ]
    )
    print()
    print(
        format_table(
            ["scenario", "standard monitor", "robust monitor"],
            rows,
            title="E2: detection rate per out-of-ODD scenario (paper Fig. 2 scenarios)",
        )
    )
    # Robust detection stays useful: the easiest scenario (dark) keeps a high rate.
    assert robust_score.detection_rates["dark"] >= 0.5
    # Every scenario is detected strictly more often than in-ODD data triggers warnings.
    for scenario, rate in robust_score.detection_rates.items():
        assert rate >= robust_score.false_positive_rate


@pytest.mark.benchmark(group="E2-detection-rate")
def test_operational_warning_throughput(benchmark, fitted_monitors, track_workload):
    """Per-frame monitor query cost (the runtime overhead in the vehicle)."""
    _, robust = fitted_monitors
    frames = track_workload.in_odd_eval.inputs[:64]

    warnings = benchmark(robust.warn_batch, frames)
    assert warnings.shape == (frames.shape[0],)
    assert not np.all(warnings)
