"""E12 — matcher-kernel back-ends: numpy reference vs compiled vs sharded.

The per-frame cost of a deployed pattern monitor is one packed-membership
query, so the matcher kernel is the serving hot loop.  This benchmark times
every registered back-end on synthetic pattern sets shaped like the two
regimes that matter — a narrow monitored layer (one machine word per
pattern) and a wide one (many words, where the numpy reference materialises
``(probes, patterns, words)`` broadcast intermediates) — asserts all
back-ends return bit-identical verdicts, and records the wall times into
the CI perf-regression gate with the *effective* back-end annotated
(``compiled`` silently degrades to ``numpy`` without numba; the JSON entry
must say which engine actually ran).

On the numba CI leg the fused kernel must beat the broadcast reference by
≥3× on the wide-layer case — the acceptance bar of the back-end registry
work; without numba that assertion is skipped, never silently weakened.
"""

import os

import numpy as np
import pytest

from repro.eval.reporting import format_table
from repro.runtime import PackedMatcher
from repro.runtime.codec import PatternCodec
from repro.runtime.kernels import HAVE_NUMBA, matcher_backends, resolve_matcher_backend

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

BACKENDS = sorted(matcher_backends())

#: (name, positions, ternary patterns, exact patterns, probe rows)
CASES = [
    ("narrow", 48, 64 if QUICK else 192, 128, 512 if QUICK else 4096),
    ("wide", 256 if QUICK else 640, 96 if QUICK else 384, 256, 512 if QUICK else 4096),
]

#: Repeat counts keep one timing sample well above timer resolution.
INNER = {"narrow": 4, "wide": 2}


def build_case(num_positions: int, num_ternary: int, num_exact: int, num_probes: int):
    """One synthetic monitored-layer pattern set plus an operational batch."""
    rng = np.random.default_rng(num_positions)
    codec = PatternCodec.from_thresholds(np.zeros(num_positions))
    exact = rng.integers(0, 2, size=(num_exact, num_positions))
    centres = rng.normal(size=(num_ternary, num_positions))
    spans = rng.uniform(0.05, 0.8, size=(num_ternary, num_positions))
    probes = rng.integers(0, 2, size=(num_probes, num_positions))
    probes[: num_exact // 4] = exact[: num_exact // 4]  # guaranteed hits

    def make_matcher(backend):
        matcher = PackedMatcher(codec.word_codec, backend=backend)
        matcher.add_exact_packed(codec.word_codec.pack_codes(exact))
        matcher.add_ternary(codec.ternary_planes(centres - spans, centres + spans))
        return matcher

    return make_matcher, codec.word_codec.pack_codes(probes)


@pytest.mark.benchmark(group="E12-matcher-kernels")
def test_matcher_kernel_backends(bench_record):
    rows = []
    for case_name, num_positions, num_ternary, num_exact, num_probes in CASES:
        make_matcher, probes = build_case(
            num_positions, num_ternary, num_exact, num_probes
        )
        reference = None
        for backend in BACKENDS:
            matcher = make_matcher(backend)
            # Warm up outside the timer: first-call JIT compilation (numba
            # leg) and lazy plan consolidation are one-time costs.
            hits = matcher.contains_packed(probes)
            if reference is None:
                reference = hits
            else:
                np.testing.assert_array_equal(hits, reference)
            key = f"matcher_{case_name}_{backend}"
            bench_record.measure(
                key,
                lambda m=matcher: m.contains_packed(probes),
                repeats=3,
                inner=INNER[case_name],
            )
            bench_record.annotate(
                key,
                backend=backend,
                effective=resolve_matcher_backend(backend).effective_name,
                positions=num_positions,
                patterns=num_ternary + num_exact,
                probes=num_probes,
            )
            rows.append(
                [
                    case_name,
                    backend,
                    resolve_matcher_backend(backend).effective_name,
                    f"{bench_record.timings[key] * 1e3:.3f} ms",
                ]
            )
        assert reference is not None and reference[: num_exact // 4].all()
    print()
    print(format_table(["case", "backend", "effective", "time/query"], rows))


@pytest.mark.benchmark(group="E12-matcher-kernels")
@pytest.mark.skipif(not HAVE_NUMBA, reason="fused kernel needs numba (CI compiled leg)")
def test_compiled_speedup_on_wide_layer(bench_record):
    """Acceptance bar: the fused kernel ≥3× over broadcast on a wide layer."""
    _, num_positions, num_ternary, num_exact, num_probes = CASES[1]
    make_matcher, probes = build_case(num_positions, num_ternary, num_exact, num_probes)
    numpy_matcher = make_matcher("numpy")
    compiled_matcher = make_matcher("compiled")
    np.testing.assert_array_equal(
        compiled_matcher.contains_packed(probes), numpy_matcher.contains_packed(probes)
    )

    def best_of(matcher, repeats=5):
        import time

        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            matcher.contains_packed(probes)
            best = min(best, time.perf_counter() - start)
        return best

    numpy_time = best_of(numpy_matcher)
    compiled_time = best_of(compiled_matcher)
    speedup = numpy_time / compiled_time
    bench_record.record("_compiled_wide_speedup", speedup)
    print(f"\nwide-layer fused-kernel speedup: {speedup:.1f}x")
    assert speedup >= 3.0, (
        f"fused compiled kernel only {speedup:.2f}x over the numpy reference "
        f"on the wide-layer case (bar: 3x)"
    )
