"""E5 — Lemma 1: the provable-robustness guarantee, checked empirically at scale.

Lemma 1 states that a warning from the robust monitor implies that no
training input is Δ-close at layer ``k_p``.  Contrapositively, Δ-bounded
perturbations of training inputs can never warn.  This benchmark hammers the
robust monitors of all three families with thousands of worst-case (corner)
and uniform perturbations of training scenes and counts violations (which
must be zero), timing the verification sweep.
"""

import numpy as np
import pytest

from repro.data.perturbations import corner_perturbations, uniform_perturbations
from repro.eval.reporting import format_table
from repro.monitors.boolean import RobustBooleanPatternMonitor
from repro.monitors.interval import RobustIntervalPatternMonitor
from repro.monitors.minmax import RobustMinMaxMonitor
from repro.monitors.perturbation import PerturbationSpec

TRACK_DELTA = 0.002
SAMPLES_PER_SCENE = 8
NUM_SCENES = 40


def _build_monitor(family, network, layer, inputs):
    spec = PerturbationSpec(delta=TRACK_DELTA, layer=0, method="box")
    if family == "minmax":
        return RobustMinMaxMonitor(network, layer, spec).fit(inputs)
    if family == "boolean":
        return RobustBooleanPatternMonitor(network, layer, spec, thresholds="mean").fit(inputs)
    return RobustIntervalPatternMonitor(network, layer, spec, num_cuts=3).fit(inputs)


@pytest.mark.benchmark(group="E5-lemma1")
@pytest.mark.parametrize("family", ["minmax", "boolean", "interval"])
def test_no_warning_on_delta_perturbed_training_scenes(
    benchmark, track_workload, track_layer, family
):
    network = track_workload.network
    train_inputs = track_workload.train.inputs
    monitor = _build_monitor(family, network, track_layer, train_inputs)
    scenes = train_inputs[:NUM_SCENES]
    rng = np.random.default_rng(0)

    def count_violations():
        violations = 0
        total = 0
        for scene in scenes:
            probes = np.vstack(
                [
                    uniform_perturbations(scene, TRACK_DELTA, SAMPLES_PER_SCENE, rng=rng),
                    corner_perturbations(scene, TRACK_DELTA, SAMPLES_PER_SCENE, rng=rng),
                ]
            )
            warnings = monitor.warn_batch(probes)
            violations += int(warnings.sum())
            total += probes.shape[0]
        return violations, total

    violations, total = benchmark(count_violations)
    print(
        f"\nE5 ({family}): {violations} Lemma-1 violations over {total} "
        "Δ-bounded perturbations (must be 0)"
    )
    assert violations == 0


@pytest.mark.benchmark(group="E5-lemma1")
def test_lemma1_direct_statement_on_random_probes(benchmark, track_workload, track_layer):
    """Direct form: whenever the robust monitor warns, no training scene is Δ-close."""
    network = track_workload.network
    train_inputs = track_workload.train.inputs
    monitor = _build_monitor("minmax", network, track_layer, train_inputs)
    rng = np.random.default_rng(1)
    probes = rng.uniform(0.0, 1.0, size=(200, network.input_dim))

    def check():
        warned = 0
        contradictions = 0
        for probe in probes:
            if not monitor.warn(probe):
                continue
            warned += 1
            distances = np.max(np.abs(train_inputs - probe[None, :]), axis=1)
            if np.any(distances <= TRACK_DELTA):
                contradictions += 1
        return warned, contradictions

    warned, contradictions = benchmark(check)
    print(
        format_table(
            ["probes", "warnings", "Lemma-1 contradictions"],
            [[probes.shape[0], warned, contradictions]],
            title="\nE5: direct Lemma 1 check on random probes",
        )
    )
    assert contradictions == 0
