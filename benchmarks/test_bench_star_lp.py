"""E15 — star-LP bound queries: per-row seed loop vs batched tiers.

The star back-end answered every bound query with ``2·d`` independent
``scipy.optimize.linprog`` calls per row (the seed loop, kept as
:func:`repro.symbolic.propagation._star_bounds_loop`).  The batched path
walks all rows in lockstep and answers each layer's queries through the
star-LP back-ends (:mod:`repro.symbolic.star_lp`): closed form while the
predicate polytopes are hypercubes, block-stacked sparse HiGHS programs
once unstable ReLUs constrain them.  This benchmark measures both paths
on a genuinely constrained walk (ReLU network, budget big enough to cross
neurons) and on a hypercube-only walk (tanh network — zero LPs end to
end), asserts the ≥5× acceptance bar on the constrained case, and feeds
the batched timings into the perf-regression gate with closed-form tier
attribution attached via ``BenchRecorder.annotate``.
"""

import os
import time

import numpy as np
import pytest

from repro.eval.reporting import format_table
from repro.symbolic.batched import BatchedBox
from repro.symbolic.propagation import (
    _star_bounds_loop,
    perturbation_bounds_batch,
)
from repro.symbolic.star_lp import ShardedStarLPBackend, StackedStarLPBackend

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

DELTA = 0.05
INPUT_DIM = 6
SIZES = [16, 64] if QUICK else [64, 256]
#: Only the largest size feeds the CI perf gate (clear of timer jitter);
#: smaller sizes are recorded with a "_" prefix (informational).
GATE_SIZE = SIZES[-1]


@pytest.fixture(scope="module")
def relu_star_network():
    from repro.nn.network import mlp

    hidden = [12, 8] if QUICK else [24, 16]
    return mlp(INPUT_DIM, hidden, 3, activation="relu", seed=55)


@pytest.fixture(scope="module")
def tanh_star_network():
    from repro.nn.network import mlp

    hidden = [12, 8] if QUICK else [24, 16]
    return mlp(INPUT_DIM, hidden, 3, activation="tanh", seed=56)


@pytest.fixture(scope="module")
def star_inputs():
    rng = np.random.default_rng(17)
    return rng.uniform(-1.0, 1.0, size=(max(SIZES), INPUT_DIM))


def _time_once(workload):
    start = time.perf_counter()
    workload()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="E15-star-lp-bounds")
def test_star_bounds_loop_vs_batched(bench_record, relu_star_network, star_inputs):
    """Constrained-star case: seed per-row loop vs the stacked lockstep walk."""
    network = relu_star_network
    to_layer = len(network.layers)
    backend = StackedStarLPBackend()
    rows = []
    speedups = {}
    for size in SIZES:
        inputs = star_inputs[:size]
        batched_box = BatchedBox(inputs - DELTA, inputs + DELTA)
        loop_time = _time_once(
            lambda: _star_bounds_loop(network, batched_box, 0, to_layer)
        )
        prefix = "" if size == GATE_SIZE else "_"
        name = f"{prefix}star_lp_stacked_n{size}"
        backend.reset_stats()
        batched = bench_record.measure(
            name,
            lambda: perturbation_bounds_batch(
                network,
                inputs,
                to_layer,
                0,
                DELTA,
                "star",
                star_lp_backend=backend,
            ),
            repeats=3,
        )
        batched_time = bench_record.timings[name]
        bench_record.record(f"_star_lp_loop_n{size}", loop_time)
        stats = dict(backend.stats)
        bench_record.annotate(
            name,
            backend="stacked",
            closed_form_stars=stats["closed_form_stars"],
            lp_stars=stats["lp_stars"],
            lp_programs=stats["lp_programs"],
            lp_objectives=stats["lp_objectives"],
        )
        speedups[size] = loop_time / batched_time
        assert np.all(batched[0] <= batched[1] + 1e-12)
        rows.append(
            [
                size,
                f"{loop_time * 1e3:.1f}",
                f"{batched_time * 1e3:.1f}",
                f"{speedups[size]:.1f}x",
                stats["lp_programs"],
            ]
        )
    print("\nE15: star bound collection, per-row loop vs stacked lockstep walk")
    print(format_table(["n", "loop_ms", "batched_ms", "speedup", "lp_programs"], rows))
    # Acceptance bar of the batched-star-LP refactor: the constrained-star
    # walk replaces O(rows * 2d) solver entries with O(chunks) and must be
    # at least 5x faster than the seed loop at the gated size.
    assert speedups[GATE_SIZE] >= 5.0, (
        f"expected >=5x over the seed loop at n={GATE_SIZE}, "
        f"got {speedups[GATE_SIZE]:.1f}x"
    )


@pytest.mark.benchmark(group="E15-star-lp-bounds")
def test_star_closed_form_walk_runs_zero_lps(
    bench_record, tanh_star_network, star_inputs
):
    """Hypercube-only case: monotone activations keep every star closed-form."""
    network = tanh_star_network
    to_layer = len(network.layers)
    backend = StackedStarLPBackend()
    backend.reset_stats()
    inputs = star_inputs[:GATE_SIZE]
    name = f"star_lp_closed_form_n{GATE_SIZE}"
    bench_record.measure(
        name,
        lambda: perturbation_bounds_batch(
            network, inputs, to_layer, 0, DELTA, "star", star_lp_backend=backend
        ),
        repeats=3,
        inner=3,
    )
    stats = dict(backend.stats)
    bench_record.annotate(
        name,
        backend="stacked",
        closed_form_stars=stats["closed_form_stars"],
        lp_programs=stats["lp_programs"],
    )
    print(
        f"\nE15: closed-form walk n={GATE_SIZE}: "
        f"{bench_record.timings[name] * 1e3:.2f} ms, "
        f"{stats['closed_form_stars']} closed-form stars, "
        f"{stats['lp_programs']} LP programs"
    )
    assert stats["lp_programs"] == 0
    assert stats["closed_form_stars"] > 0


@pytest.mark.benchmark(group="E15-star-lp-bounds")
def test_star_sharded_tier_informational(bench_record, relu_star_network, star_inputs):
    """Sharded-tier timing (informational: thread scaling is machine-bound)."""
    network = relu_star_network
    to_layer = len(network.layers)
    backend = ShardedStarLPBackend(min_shard_stars=1)
    inputs = star_inputs[:GATE_SIZE]
    name = f"_star_lp_sharded_n{GATE_SIZE}"
    result = bench_record.measure(
        name,
        lambda: perturbation_bounds_batch(
            network, inputs, to_layer, 0, DELTA, "star", star_lp_backend=backend
        ),
        repeats=3,
    )
    assert result[0].shape == (GATE_SIZE, network.layer_output_dim(to_layer))
    print(
        f"\nE15: sharded tier n={GATE_SIZE}: "
        f"{bench_record.timings[name] * 1e3:.1f} ms"
    )
